"""Tests for GPU specs, the reduction model, and counters."""

import pytest

from repro.gpusim.counters import MemoryCounters, TrafficCounters
from repro.gpusim.reduction import block_reduction_time, global_reduction_time
from repro.gpusim.specs import GPU_SPECS


class TestSpecs:
    def test_three_generations(self):
        assert set(GPU_SPECS) == {"K80", "P100", "V100"}

    def test_generation_labels(self):
        assert GPU_SPECS["K80"].generation == "Kepler"
        assert GPU_SPECS["P100"].generation == "Pascal"
        assert GPU_SPECS["V100"].generation == "Volta"

    def test_bandwidth_ordering(self):
        """Newer generations have more bandwidth (paper observation: K80
        suffers most from uncoalesced traffic)."""
        assert (
            GPU_SPECS["K80"].global_bw
            < GPU_SPECS["P100"].global_bw
            < GPU_SPECS["V100"].global_bw
        )

    def test_volta_has_more_shared_memory(self):
        assert GPU_SPECS["V100"].shared_mem_per_block > GPU_SPECS["P100"].shared_mem_per_block

    def test_transaction_and_warp_sizes(self):
        for spec in GPU_SPECS.values():
            assert spec.transaction_bytes == 128
            assert spec.warp_size == 32

    def test_bandwidth_utilization_clamps(self, p100):
        assert p100.bandwidth_utilization(0) == p100.min_bw_utilization
        assert p100.bandwidth_utilization(10**9) == 1.0
        mid = p100.bandwidth_utilization(p100.threads_for_peak_bw // 2)
        assert p100.min_bw_utilization < mid < 1.0


class TestReduction:
    def test_block_reduction_linear_in_threads(self, p100):
        t128 = block_reduction_time(p100, 128)
        t256 = block_reduction_time(p100, 256)
        assert t256 == pytest.approx(2 * t128)

    def test_block_reduction_linear_in_events(self, p100):
        assert block_reduction_time(p100, 256, 10) == pytest.approx(
            10 * block_reduction_time(p100, 256)
        )

    def test_global_reduction_linear_in_blocks(self, p100):
        assert global_reduction_time(p100, 8) == pytest.approx(
            2 * global_reduction_time(p100, 4)
        )

    def test_rejects_nonpositive(self, p100):
        with pytest.raises(ValueError):
            block_reduction_time(p100, 0)
        with pytest.raises(ValueError):
            global_reduction_time(p100, 0)


class TestCounters:
    def test_load_efficiency(self):
        c = MemoryCounters()
        c.add(requested=64, fetched=256, transactions=2, accesses=16)
        assert c.load_efficiency == 0.25

    def test_empty_counter_efficiency_one(self):
        assert MemoryCounters().load_efficiency == 1.0

    def test_merge_accumulates(self):
        a = MemoryCounters(10, 20, 1, 5)
        b = MemoryCounters(30, 40, 2, 5)
        a.merge(b)
        assert (a.requested_bytes, a.fetched_bytes, a.transactions, a.accesses) == (
            40, 60, 3, 10,
        )

    def test_traffic_totals(self):
        t = TrafficCounters()
        t.forest_global.add(10, 128, 1, 1)
        t.sample_global.add(20, 256, 2, 2)
        t.shared_read.add(5, 5, 1, 1)
        t.shared_write.add(7, 7, 1, 1)
        assert t.global_fetched_bytes == 384
        assert t.shared_bytes == 12

    def test_traffic_merge(self):
        a, b = TrafficCounters(), TrafficCounters()
        a.forest_global.add(1, 128, 1, 1)
        b.forest_global.add(2, 128, 1, 1)
        b.shared_read.add(4, 4, 1, 1)
        a.merge(b)
        assert a.forest_global.requested_bytes == 3
        assert a.shared_read.requested_bytes == 4
