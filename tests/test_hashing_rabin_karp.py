"""Tests for the Rabin–Karp rolling hash."""

import numpy as np
import pytest

from repro.hashing.rabin_karp import rabin_karp, rabin_karp_rolling


class TestRabinKarp:
    def test_equal_inputs_equal_hashes(self):
        assert rabin_karp([0, 1, 1, 0]) == rabin_karp([0, 1, 1, 0])

    def test_order_sensitive(self):
        assert rabin_karp([0, 1]) != rabin_karp([1, 0])

    def test_leading_zero_significant(self):
        assert rabin_karp([0, 1]) != rabin_karp([1])

    def test_empty_sequence(self):
        assert rabin_karp([]) == 0

    def test_accepts_numpy_arrays(self):
        arr = np.array([1, 0, 1], dtype=np.uint8)
        assert rabin_karp(arr) == rabin_karp([1, 0, 1])

    def test_within_modulus(self):
        h = rabin_karp([1] * 200)
        assert 0 <= h < 2_147_483_647

    def test_explicit_polynomial(self):
        base, mod = 10, 10**9
        # symbols shifted by one: [2, 3] -> (2+1)*10 + (3+1) = 34
        assert rabin_karp([2, 3], base=base, modulus=mod) == 34


class TestRolling:
    def test_matches_direct_hash_per_window(self):
        rng = np.random.default_rng(0)
        seq = rng.integers(0, 2, size=50)
        window = 7
        rolled = list(rabin_karp_rolling(seq, window))
        direct = [rabin_karp(seq[i : i + window]) for i in range(len(seq) - window + 1)]
        assert rolled == direct

    def test_short_sequence_yields_nothing(self):
        assert list(rabin_karp_rolling([1, 0], 5)) == []

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            list(rabin_karp_rolling([1, 0], 0))
