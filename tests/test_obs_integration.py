"""End-to-end observability: engine runs produce complete run reports."""

from __future__ import annotations

import numpy as np

from repro.core import ObsConfig, TahoeConfig, TahoeEngine
from repro.gpusim.counters import LevelStats
from repro.gpusim.report import format_run_report
from repro.obs import load_report_json, write_report_json


def test_predict_report_records_one_decision_per_batch(small_forest, test_X, p100):
    engine = TahoeEngine(small_forest, p100)
    result = engine.predict(test_X, batch_size=50, report=True)
    report = result.report
    n_batches = -(-test_X.shape[0] // 50)
    assert len(result.batches) == n_batches
    assert len(report.batches) == n_batches
    # exactly one selector decision per batch, prediction next to actual
    assert len(report.decisions) == n_batches
    for i, d in enumerate(report.decisions):
        assert d.batch_index == i
        assert d.chosen == result.batches[i].strategy
        assert d.predicted_time is not None and d.predicted_time > 0
        assert d.simulated_time == result.batches[i].time
        assert d.prediction_ratio is not None and d.prediction_ratio > 0
        # every strategy shows up as a candidate, applicable or not
        assert {c.strategy for c in d.candidates} == {
            "shared_data",
            "direct",
            "shared_forest",
            "splitting_shared_forest",
        }
    assert sum(d.batch_size for d in report.decisions) == test_X.shape[0]


def test_report_covers_conversion_stages_and_traffic(small_forest, test_X, p100):
    engine = TahoeEngine(small_forest, p100)
    report = engine.predict(test_X, batch_size=60, report=True).report
    assert report.engine == "tahoe"
    assert report.gpu == p100.name
    assert report.n_samples == test_X.shape[0]
    assert report.total_time > 0
    assert report.throughput > 0
    # the section 7.4 five-stage conversion breakdown
    (conv,) = report.conversions
    assert set(conv.stages) == {
        "fetch_probabilities",
        "node_rearrangement",
        "similarity_detection",
        "format_conversion",
        "copy_to_gpu",
        "cache_lookup",
    }
    assert not conv.cache_hit
    assert conv.total > 0
    # per-batch traffic made it into the batch records and the metrics
    assert all("forest_global" in b.traffic for b in report.batches)
    counters = report.metrics["counters"]
    assert counters["batches_total"] == len(report.batches)
    assert counters["samples_total"] == test_X.shape[0]
    assert counters["traffic.forest_global.fetched_bytes"] > 0
    # the continuous section 6 model-accuracy accounting
    accounting = report.model_accounting()
    assert accounting["overall"]["n"] == len(report.decisions)
    assert accounting["overall"]["mean_ratio"] > 0
    for row in accounting.values():
        assert row["mean_abs_rel_error"] >= 0


def test_report_round_trips_through_json(small_forest, test_X, p100, tmp_path):
    engine = TahoeEngine(small_forest, p100)
    report = engine.predict(test_X, batch_size=60, report=True).report
    path = write_report_json(report, tmp_path / "run.json")
    assert load_report_json(path).to_dict() == report.to_dict()
    # and it renders as a human-readable report without blowing up
    text = format_run_report(report)
    assert "conversion" in text.lower()
    assert report.batches[0].strategy in text


def test_tracing_config_records_spans(small_forest, test_X, p100):
    config = TahoeConfig(obs=ObsConfig(tracing=True))
    engine = TahoeEngine(small_forest, p100, config=config)
    engine.predict(test_X, batch_size=60, report=False)
    names = {s.name for s in engine.recorder.tracer.spans}
    assert "engine.convert" in names
    assert "engine.predict" in names
    assert "engine.run_batch" in names
    assert "rank_strategies" in names
    assert "similarity_detection" in names
    # kernel-loop spans from the simulator layer
    assert any(n.startswith("gpusim.trace_") for n in names)
    assert any(n.startswith("strategy.") for n in names)
    # nesting: run_batch spans sit below the predict span
    predict_span = engine.recorder.tracer.find("engine.predict")[0]
    for batch_span in engine.recorder.tracer.find("engine.run_batch"):
        assert batch_span.depth > predict_span.depth


def test_tracing_off_by_default_records_no_spans(small_forest, test_X, p100):
    engine = TahoeEngine(small_forest, p100)
    engine.predict(test_X[:50], report=False)
    assert engine.recorder.tracer.spans == []
    assert not engine.recorder.tracer.enabled


def test_default_config_engines_do_not_share_state(small_forest, p100):
    # regression: the config default used to be a shared mutable instance
    a = TahoeEngine(small_forest, p100)
    b = TahoeEngine(small_forest, p100)
    assert a.config is not b.config
    assert a.recorder is not b.recorder


def test_predictions_identical_with_and_without_reporting(small_forest, test_X, p100):
    plain = TahoeEngine(small_forest, p100).predict(test_X, batch_size=60)
    traced = TahoeEngine(
        small_forest, p100, config=TahoeConfig(obs=ObsConfig(tracing=True))
    ).predict(test_X, batch_size=60, report=True)
    np.testing.assert_allclose(plain.predictions, traced.predictions)
    assert plain.total_time == traced.total_time


def test_level_stats_default_arrays_allocated():
    # regression: ndarray fields were declared with field(default=None)
    stats = LevelStats(max_levels=5)
    for arr in (stats.distance_sum, stats.pair_count, stats.requested, stats.fetched):
        assert isinstance(arr, np.ndarray)
        assert arr.shape == (5,)
        assert not arr.any()
    custom = np.ones(5)
    assert LevelStats(max_levels=5, distance_sum=custom).distance_sum is custom
