"""Request-scoped tracing: spans must tile [arrival, completion] exactly."""

import json

import pytest

from repro.obs import serving_trace_events, write_serving_trace
from repro.serving import (
    REJECTED_DEADLINE,
    REJECTED_QUEUE_FULL,
    InferenceRequest,
    SchedulerConfig,
    TahoeServer,
    poisson_workload,
)
from repro.serving.tracing import RequestTrace, StageSpan


def make_server(forest, spec, **overrides):
    defaults = dict(n_engines=1, max_wait=1e-3, max_batch=256)
    defaults.update(overrides)
    return TahoeServer(forest, spec, scheduler=SchedulerConfig(**defaults))


def single_sample_requests(X, n, *, start=0.0, spacing=0.0, deadline=None):
    return [
        InferenceRequest(
            request_id=i,
            X=X[i % X.shape[0]][None, :],
            arrival_time=start + i * spacing,
            deadline=(start + i * spacing + deadline) if deadline is not None else None,
        )
        for i in range(n)
    ]

LIVE_STAGES = [
    "queue_wait",
    "batch_assembly",
    "cache_lookup",
    "kernel",
    "reduction",
    "response_fanout",
]


class TestSpanTiling:
    def test_spans_cover_lifetime_without_gaps_or_overlaps(
        self, small_forest, p100, test_X
    ):
        server = make_server(small_forest, p100, n_engines=2)
        reqs = poisson_workload(test_X, qps=3000, duration=0.05, seed=7)
        result = server.run(reqs)
        assert result.responses and all(r.ok for r in result.responses)
        for resp in result.responses:
            trace = resp.trace
            assert isinstance(trace, RequestTrace)
            spans = trace.spans
            assert [s.stage for s in spans] == LIVE_STAGES
            # The ISSUE contract: enqueue→response, no gaps, no overlaps.
            assert spans[0].start == resp.arrival_time
            assert spans[-1].end == resp.completion_time
            for prev, cur in zip(spans, spans[1:]):
                assert cur.start == prev.end
            assert all(s.duration >= 0 for s in spans)
            # Stage durations decompose the end-to-end latency exactly.
            total = sum(trace.stage_durations().values())
            latency = resp.completion_time - resp.arrival_time
            assert total == pytest.approx(latency, abs=1e-12)

    def test_trace_ids_are_unique_and_stable(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100)
        result = server.run(single_sample_requests(test_X, 20, spacing=1e-5))
        ids = [r.trace.trace_id for r in result.responses]
        assert len(set(ids)) == len(ids)
        for resp in result.responses:
            assert resp.trace.request_id == resp.request_id

    def test_span_args_carry_stage_context(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100)
        result = server.run(single_sample_requests(test_X, 10, spacing=1e-9))
        trace = result.responses[0].trace
        assembly = trace.stage("batch_assembly")
        assert assembly.args["batch_size"] >= 1
        assert "engine" in assembly.args
        cache = trace.stage("cache_lookup")
        assert cache.duration == 0.0
        assert cache.args["cache_hit"] in (False, True)
        fanout = trace.stage("response_fanout")
        assert fanout.args["missed_deadline"] is False

    def test_tracing_can_be_disabled(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100, request_tracing=False)
        result = server.run(single_sample_requests(test_X, 5, spacing=1e-5))
        assert all(r.trace is None for r in result.responses)


class TestRejectionTraces:
    def test_deadline_rejection_gets_degenerate_trace(
        self, small_forest, p100, test_X
    ):
        server = make_server(small_forest, p100, max_wait=1e-2, target_batch=10_000)
        reqs = single_sample_requests(test_X, 6, spacing=1e-6, deadline=1e-4)
        result = server.run(reqs)
        for resp in result.responses:
            assert not resp.ok
            spans = resp.trace.spans
            assert [s.stage for s in spans] == ["queue_wait", "response_fanout"]
            assert spans[0].start == resp.arrival_time
            assert spans[0].end == spans[1].start == spans[1].end
            assert spans[1].args["rejected"] == REJECTED_DEADLINE

    def test_queue_full_rejection_gets_degenerate_trace(
        self, small_forest, p100, test_X
    ):
        server = make_server(
            small_forest, p100, max_queue=3, target_batch=10_000, max_wait=10.0
        )
        result = server.run(single_sample_requests(test_X, 8, spacing=1e-9))
        rejected = [r for r in result.responses if not r.ok]
        assert rejected
        for resp in rejected:
            assert resp.trace.stage("response_fanout").args["rejected"] == (
                REJECTED_QUEUE_FULL
            )


class TestChromeTraceExport:
    def test_one_track_per_stage_and_valid_events(
        self, small_forest, p100, test_X, tmp_path
    ):
        server = make_server(small_forest, p100)
        result = server.run(single_sample_requests(test_X, 15, spacing=1e-5))
        events = serving_trace_events(result.responses)
        tracks = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert tracks >= {
            "stage:queue_wait",
            "stage:batch_assembly",
            "stage:kernel",
            "stage:reduction",
        }
        # One track (tid) per stage: every span of a stage shares its tid.
        tids = {}
        for e in events:
            if e.get("ph") != "X":
                continue
            tids.setdefault(e["args"]["stage"], set()).add(e["tid"])
            assert e["dur"] >= 0
        assert set(tids) == set(LIVE_STAGES)
        assert all(len(t) == 1 for t in tids.values())

        out = tmp_path / "trace.json"
        write_serving_trace(result.responses, out)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_report_embeds_traces_with_cap(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100)
        result = server.run(
            single_sample_requests(test_X, 12, spacing=1e-5), report=True
        )
        traces = result.report.meta["request_traces"]
        assert len(traces) == 12
        assert "request_traces_dropped" not in result.report.meta
        for t in traces:
            assert t["spans"][0]["stage"] == "queue_wait"


class TestStageSpanBasics:
    def test_duration_and_dict_round_trip(self):
        span = StageSpan("kernel", 1.0, 1.5, {"batch_size": 4})
        assert span.duration == 0.5
        assert span.to_dict() == {
            "stage": "kernel",
            "start": 1.0,
            "end": 1.5,
            "args": {"batch_size": 4},
        }
        trace = RequestTrace(trace_id="t0", request_id=0, spans=[span])
        assert trace.start == 1.0 and trace.end == 1.5 and trace.duration == 0.5
        assert trace.stage("kernel") is span
        assert trace.stage("missing") is None
