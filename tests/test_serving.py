"""Tests for the micro-batching serving layer."""

import numpy as np
import pytest

from repro.core import LayoutCache
from repro.serving import (
    REJECTED_DEADLINE,
    REJECTED_QUEUE_FULL,
    InferenceRequest,
    SchedulerConfig,
    TahoeServer,
    poisson_workload,
)


def make_server(forest, spec, **overrides):
    defaults = dict(n_engines=1, max_wait=1e-3, max_batch=256)
    defaults.update(overrides)
    return TahoeServer(forest, spec, scheduler=SchedulerConfig(**defaults))


def single_sample_requests(X, n, *, start=0.0, spacing=0.0, deadline=None):
    return [
        InferenceRequest(
            request_id=i,
            X=X[i % X.shape[0]][None, :],
            arrival_time=start + i * spacing,
            deadline=(start + i * spacing + deadline) if deadline is not None else None,
        )
        for i in range(n)
    ]


class TestMicroBatching:
    def test_coalesces_and_predicts_correctly(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100)
        reqs = single_sample_requests(test_X, 60, spacing=1e-5)
        result = server.run(reqs)
        assert len(result.responses) == 60
        assert all(r.ok for r in result.responses)
        # Coalescing happened: far fewer micro-batches than requests.
        assert 0 < result.summary["batches"] < 60
        for resp in result.responses:
            np.testing.assert_allclose(
                resp.predictions,
                small_forest.predict(reqs[resp.request_id].X),
                rtol=1e-5,
            )

    def test_flush_point_from_models(self, small_forest, p100):
        server = make_server(small_forest, p100)
        assert 1 <= server.target_batch <= server.config.max_batch

    def test_flush_point_override(self, small_forest, p100):
        server = make_server(small_forest, p100, target_batch=7)
        assert server.target_batch == 7

    def test_target_batch_triggers_flush(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100, target_batch=8, max_wait=10.0)
        # All arrive at ~t=0; only the target, never the (huge) max wait,
        # can trigger the first 3 flushes.
        reqs = single_sample_requests(test_X, 25, spacing=1e-9)
        result = server.run(reqs)
        hist = result.summary["batch_size_histogram"]
        assert hist.get("8") == 3
        assert result.summary["batches"] == 4  # 3 full + 1 drain

    def test_max_wait_bounds_latency(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100, max_wait=5e-4, target_batch=10_000)
        reqs = single_sample_requests(test_X, 30, spacing=1e-5)
        result = server.run(reqs)
        # Every request waits at most max_wait + one batch service time.
        service_bound = max(
            r.completion_time - r.arrival_time for r in result.responses
        )
        assert service_bound < 5e-4 + 0.01
        assert result.summary["latency_s"]["p99"] >= result.summary["latency_s"]["p50"]

    def test_round_robin_uses_every_engine(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100, n_engines=3, target_batch=5)
        reqs = single_sample_requests(test_X, 30, spacing=1e-9)
        server.run(reqs)
        assert all(t > 0 for t in server._engine_free)


class TestAdmissionControl:
    def test_backpressure_rejects_structured(self, small_forest, p100, test_X):
        server = make_server(
            small_forest, p100, max_queue=5, target_batch=10_000, max_wait=10.0
        )
        reqs = single_sample_requests(test_X, 12, spacing=1e-9)
        result = server.run(reqs)
        rejected = [r for r in result.responses if not r.ok]
        assert len(rejected) == 7
        for r in rejected:
            assert r.error.code == REJECTED_QUEUE_FULL
            assert r.predictions is None
        # The queued 5 still completed — no exception mid-batch.
        assert result.summary["completed"] == 5
        assert result.summary["rejected_queue_full"] == 7

    def test_expired_deadline_rejected_at_dispatch(self, small_forest, p100, test_X):
        # Deadline shorter than the coalescing wait: expired by flush time.
        server = make_server(
            small_forest, p100, max_wait=1e-2, target_batch=10_000
        )
        reqs = single_sample_requests(test_X, 8, spacing=1e-6, deadline=1e-4)
        result = server.run(reqs)
        assert result.summary["rejected_deadline"] == 8
        for r in result.responses:
            assert not r.ok
            assert r.error.code == REJECTED_DEADLINE
            assert "deadline" in r.error.detail

    def test_mixed_batch_survives_expired_neighbours(self, small_forest, p100, test_X):
        server = make_server(
            small_forest, p100, max_wait=1e-2, target_batch=10_000
        )
        live = single_sample_requests(test_X, 4, spacing=1e-6)
        doomed = [
            InferenceRequest(
                request_id=100 + i,
                X=test_X[i][None, :],
                arrival_time=1e-5 + i * 1e-6,
                deadline=2e-5,
            )
            for i in range(3)
        ]
        result = server.run(live + doomed)
        ok = [r for r in result.responses if r.ok]
        bad = [r for r in result.responses if not r.ok]
        assert len(ok) == 4 and len(bad) == 3
        for resp in ok:
            np.testing.assert_allclose(
                resp.predictions,
                small_forest.predict(live[resp.request_id].X),
                rtol=1e-5,
            )

    def test_late_completion_counts_as_miss_not_rejection(
        self, small_forest, p100, test_X
    ):
        # Deadline after dispatch but before completion: work is done,
        # response is marked late, nothing is rejected.
        server = make_server(small_forest, p100, max_wait=0.0)
        req = InferenceRequest(
            request_id=0, X=test_X[:1], arrival_time=0.0, deadline=1e-12
        )
        result = server.run([req])
        (resp,) = result.responses
        assert resp.ok
        assert resp.missed_deadline
        assert result.summary["deadline_misses"] == 1
        assert result.summary["rejected_deadline"] == 0


class TestServingTelemetry:
    def test_report_and_metrics(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100)
        reqs = single_sample_requests(test_X, 40, spacing=1e-5)
        result = server.run(reqs, report=True)
        assert result.report is not None
        assert result.report.engine == "tahoe-serving"
        counters = result.report.metrics["counters"]
        assert counters["serving.requests_total"] == 40
        assert counters["serving.completed"] == 40
        assert counters["serving.batches_total"] == result.summary["batches"]
        hists = result.report.metrics["histograms"]
        assert hists["serving.batch_size"]["count"] == result.summary["batches"]
        assert hists["serving.request_latency_seconds"]["count"] == 40
        assert "serving.queue_depth" in hists
        assert result.report.meta["serving_summary"]["completed"] == 40
        # Batch records flowed through the shared RunReport schema.
        assert len(result.report.batches) == result.summary["batches"]

    def test_summary_latency_quantiles_ordered(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100)
        result = server.run(single_sample_requests(test_X, 50, spacing=2e-5))
        lat = result.summary["latency_s"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_cache_hit_visible_in_summary(self, small_forest, p100, test_X):
        cache = LayoutCache()
        server = TahoeServer(
            small_forest,
            p100,
            scheduler=SchedulerConfig(n_engines=2),
            layout_cache=cache,
        )
        result = server.run(single_sample_requests(test_X, 5, spacing=1e-5))
        conv = result.summary["conversions"]
        assert [c["cache_hit"] for c in conv] == [False, True]
        assert conv[1]["total_s"] < conv[0]["total_s"]
        assert result.summary["layout_cache"]["hits"] == 1


class TestWorkloadGenerator:
    def test_poisson_properties(self, test_X):
        reqs = poisson_workload(
            test_X, qps=1000, duration=0.2, seed=4, deadline=0.05
        )
        assert len(reqs) > 100
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
        assert all(0 < t < 0.2 for t in times)
        assert all(r.deadline == pytest.approx(r.arrival_time + 0.05) for r in reqs)
        assert all(r.n_samples == 1 for r in reqs)

    def test_deterministic_given_seed(self, test_X):
        a = poisson_workload(test_X, qps=500, duration=0.1, seed=9)
        b = poisson_workload(test_X, qps=500, duration=0.1, seed=9)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.X, rb.X)

    def test_request_sizes(self, test_X):
        reqs = poisson_workload(
            test_X, qps=2000, duration=0.1, seed=2, max_request_samples=4
        )
        sizes = {r.n_samples for r in reqs}
        assert sizes <= {1, 2, 3, 4}
        assert len(sizes) > 1

    def test_rejects_bad_parameters(self, test_X):
        with pytest.raises(ValueError):
            poisson_workload(test_X, qps=0, duration=1.0)
        with pytest.raises(ValueError):
            poisson_workload(test_X, qps=10, duration=0)
        with pytest.raises(ValueError):
            poisson_workload(test_X, qps=10, duration=1.0, max_request_samples=0)

    def test_end_to_end_sustains_offered_rate(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100, n_engines=2)
        reqs = poisson_workload(test_X, qps=2000, duration=0.2, seed=1, deadline=0.05)
        result = server.run(reqs)
        s = result.summary
        assert s["completed"] == len(reqs)
        assert s["achieved_qps"] >= 0.9 * min(2000, s["offered_qps"])


class TestRequestValidation:
    def test_empty_request_rejected_at_construction(self):
        with pytest.raises(ValueError):
            InferenceRequest(request_id=0, X=np.zeros((0, 4)), arrival_time=0.0)

    def test_1d_payload_promoted(self):
        req = InferenceRequest(request_id=0, X=np.zeros(4), arrival_time=0.0)
        assert req.X.shape == (1, 4)
        assert req.n_samples == 1
