"""Tests for the Tahoe engine, FIL baseline, and metrics."""

import math

import numpy as np
import pytest

from repro.core import FILEngine, TahoeConfig, TahoeEngine
from repro.core.metrics import accuracy, geometric_mean, speedup, throughput


@pytest.fixture(scope="module")
def engines(request):
    forest = request.getfixturevalue("small_forest")
    p100 = request.getfixturevalue("p100")
    return TahoeEngine(forest, p100), FILEngine(forest, p100)


class TestTahoeEngine:
    def test_predictions_match_reference(self, engines, small_forest, test_X):
        tahoe, _ = engines
        result = tahoe.predict(test_X)
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X), rtol=1e-5
        )

    def test_batched_predictions_identical(self, engines, test_X):
        tahoe, _ = engines
        whole = tahoe.predict(test_X)
        batched = tahoe.predict(test_X, batch_size=32)
        np.testing.assert_allclose(batched.predictions, whole.predictions, rtol=1e-6)
        assert len(batched.batches) == math.ceil(test_X.shape[0] / 32)

    def test_conversion_stats_populated(self, engines):
        tahoe, _ = engines
        stats = tahoe.conversion_stats
        assert stats.total > 0
        assert stats.t_similarity_detection > 0
        assert stats.t_node_rearrangement > 0

    def test_adaptive_layout_built(self, engines):
        tahoe, _ = engines
        assert tahoe.layout.format_name == "adaptive"
        assert tahoe.layout.record.attr_bytes == 1  # letter: 16 attributes

    def test_strategy_override(self, small_forest, p100, test_X):
        engine = TahoeEngine(
            small_forest, p100, config=TahoeConfig(strategy_override="direct")
        )
        result = engine.predict(test_X)
        assert result.strategies_used == ["direct"]

    def test_unknown_override_raises(self, small_forest, p100, test_X):
        engine = TahoeEngine(
            small_forest, p100, config=TahoeConfig(strategy_override="warp_magic")
        )
        with pytest.raises(ValueError):
            engine.predict(test_X)

    def test_update_forest_reconverts(self, engines, small_gbdt):
        tahoe, _ = engines
        old_layout = tahoe.layout
        stats = tahoe.update_forest(small_gbdt)
        assert tahoe.layout is not old_layout
        assert stats.total > 0
        assert tahoe.forest.n_trees == small_gbdt.n_trees

    def test_edge_probability_counting(self, small_forest, p100, test_X):
        engine = TahoeEngine(
            small_forest, p100, config=TahoeConfig(count_edge_probabilities=True)
        )
        before = engine.forest.trees[0].visit_count.copy()
        engine.predict(test_X)
        after = engine.forest.trees[0].visit_count
        assert not np.array_equal(before[: len(after)], after) or len(before) != len(after)

    def test_throughput_positive(self, engines, test_X):
        tahoe, _ = engines
        assert tahoe.predict(test_X).throughput > 0

    def test_selected_strategy_exposed(self, engines, test_X):
        tahoe, _ = engines
        name = tahoe.select_strategy_name(test_X.shape[0])
        result = tahoe.predict(test_X)
        assert result.strategies_used[0] == name


class TestFILEngine:
    def test_predictions_match_reference(self, engines, small_forest, test_X):
        _, fil = engines
        result = fil.predict(test_X)
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X), rtol=1e-5
        )

    def test_always_shared_data(self, engines, test_X):
        _, fil = engines
        result = fil.predict(test_X, batch_size=50)
        assert set(result.strategies_used) == {"shared_data"}

    def test_reorg_layout(self, engines):
        _, fil = engines
        assert fil.layout.format_name == "reorg"
        assert fil.layout.record.attr_bytes == 4

    def test_tahoe_not_slower(self, engines, test_X):
        """On this forest Tahoe must be at least as fast as FIL."""
        tahoe, fil = engines
        t = tahoe.predict(test_X).total_time
        f = fil.predict(test_X).total_time
        assert t <= f * 1.05


class TestMetrics:
    def test_throughput(self):
        assert throughput(100, 2.0) == 50.0
        assert throughput(100, 0.0) == math.inf

    def test_speedup(self):
        assert speedup(4.0, 2.0) == 2.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
