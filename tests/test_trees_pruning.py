"""Tests for post-pruning and tree compaction."""

import numpy as np
import pytest

from repro.trees.pruning import compact_tree, prune_tree
from repro.trees.tree import LEAF, DecisionTree


def _weak_split_tree():
    """Root split is strong; node 2's split separates nearly equal leaves."""
    return DecisionTree(
        feature=np.array([0, LEAF, 1, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.0, 0, 0.0, 0, 0], dtype=np.float32),
        left=np.array([1, LEAF, 3, LEAF, LEAF], dtype=np.int32),
        right=np.array([2, LEAF, 4, LEAF, LEAF], dtype=np.int32),
        value=np.array([0, -5.0, 0, 1.00, 1.01], dtype=np.float32),
        default_left=np.array([True] * 5),
        visit_count=np.array([100, 50, 50, 25, 25], dtype=np.int64),
    )


class TestPruneTree:
    def test_prunes_weak_split(self):
        tree = _weak_split_tree()
        pruned = prune_tree(tree, alpha=0.01)
        assert pruned.n_nodes == 3  # node 2 collapsed
        assert pruned.depth() == 1

    def test_keeps_strong_split(self):
        tree = _weak_split_tree()
        pruned = prune_tree(tree, alpha=0.01)
        # Root split separates -5 from ~1; it must survive.
        assert not pruned.is_leaf[0]

    def test_merged_value_is_weighted_mean(self):
        tree = _weak_split_tree()
        pruned = prune_tree(tree, alpha=0.01)
        merged = pruned.value[pruned.right[0]]
        assert merged == pytest.approx((25 * 1.00 + 25 * 1.01) / 50)

    def test_alpha_zero_keeps_everything(self):
        tree = _weak_split_tree()
        pruned = prune_tree(tree, alpha=0.0)
        assert pruned.n_nodes == tree.n_nodes

    def test_huge_alpha_collapses_to_leaf(self):
        tree = _weak_split_tree()
        pruned = prune_tree(tree, alpha=1e9)
        assert pruned.n_nodes == 1

    def test_iterates_to_fixpoint(self):
        """Pruning leaves can expose a new prunable parent."""
        # Node 0 -> (leaf 1, node 2); node 2 -> (leaf 3, node 4);
        # node 4 -> two near-equal leaves. After 4 collapses, node 2's
        # children are near-equal leaves too.
        tree = DecisionTree(
            feature=np.array([0, LEAF, 1, LEAF, 0, LEAF, LEAF], dtype=np.int32),
            threshold=np.zeros(7, dtype=np.float32),
            left=np.array([1, LEAF, 3, LEAF, 5, LEAF, LEAF], dtype=np.int32),
            right=np.array([2, LEAF, 4, LEAF, 6, LEAF, LEAF], dtype=np.int32),
            value=np.array([0, -9.0, 0, 2.0, 0, 2.0, 2.001], dtype=np.float32),
            default_left=np.array([True] * 7),
            visit_count=np.array([100, 40, 60, 30, 30, 15, 15], dtype=np.int64),
        )
        pruned = prune_tree(tree, alpha=0.01)
        assert pruned.n_nodes == 3

    def test_does_not_modify_input(self):
        tree = _weak_split_tree()
        before = tree.feature.copy()
        prune_tree(tree, alpha=1e9)
        np.testing.assert_array_equal(tree.feature, before)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            prune_tree(_weak_split_tree(), alpha=-1.0)

    def test_pruned_tree_validates(self, small_forest):
        for tree in small_forest.trees[:5]:
            prune_tree(tree, alpha=0.05).validate()


class TestCompactTree:
    def test_renumbers_bfs(self, manual_tree):
        keep = np.ones(manual_tree.n_nodes, dtype=bool)
        out = compact_tree(manual_tree, keep)
        assert out.n_nodes == manual_tree.n_nodes
        # BFS renumbering keeps levels contiguous.
        np.testing.assert_array_equal(out.node_depths(), sorted(out.node_depths()))

    def test_requires_root(self, manual_tree):
        keep = np.ones(manual_tree.n_nodes, dtype=bool)
        keep[0] = False
        with pytest.raises(ValueError, match="root"):
            compact_tree(manual_tree, keep)

    def test_preserves_predictions_when_keeping_all(self, manual_tree):
        keep = np.ones(manual_tree.n_nodes, dtype=bool)
        out = compact_tree(manual_tree, keep)
        X = np.random.default_rng(0).standard_normal((50, 2)).astype(np.float32)
        np.testing.assert_allclose(out.predict(X), manual_tree.predict(X))
