"""Tests for layout serialisation."""

import numpy as np
import pytest

from repro.formats import build_adaptive_layout, build_reorg_layout
from repro.formats.io import load_layout, save_layout


@pytest.fixture()
def layout(small_forest):
    return build_adaptive_layout(small_forest)


class TestLayoutRoundTrip:
    def test_predictions_preserved(self, layout, test_X, tmp_path):
        path = tmp_path / "layout.npz"
        save_layout(layout, path)
        restored = load_layout(path)
        np.testing.assert_allclose(
            restored.forest.predict(test_X), layout.forest.predict(test_X), rtol=1e-6
        )

    def test_addresses_identical(self, layout, tmp_path):
        path = tmp_path / "layout.npz"
        save_layout(layout, path)
        restored = load_layout(path)
        for a, b in zip(restored.node_address, layout.node_address):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(restored.level_base, layout.level_base)
        assert restored.total_bytes == layout.total_bytes

    def test_record_and_order_preserved(self, layout, tmp_path):
        path = tmp_path / "layout.npz"
        save_layout(layout, path)
        restored = load_layout(path)
        assert restored.record == layout.record
        assert restored.tree_order == layout.tree_order
        assert restored.format_name == "adaptive"

    def test_restored_layout_runs_on_simulator(self, layout, test_X, p100, small_forest, tmp_path):
        from repro.strategies import SharedDataStrategy

        path = tmp_path / "layout.npz"
        save_layout(layout, path)
        restored = load_layout(path)
        result = SharedDataStrategy().run(restored, test_X, p100)
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X), rtol=1e-5
        )

    def test_runtime_caches_not_persisted(self, layout, tmp_path):
        from repro.gpusim.trace import flatten_layout

        flatten_layout(layout)  # populate a runtime cache
        path = tmp_path / "layout.npz"
        save_layout(layout, path)
        restored = load_layout(path)
        assert "_flat" not in restored.metadata

    def test_reorg_layout_round_trips(self, small_forest, test_X, tmp_path):
        layout = build_reorg_layout(small_forest)
        path = tmp_path / "reorg.npz"
        save_layout(layout, path)
        restored = load_layout(path)
        assert restored.format_name == "reorg"
        assert restored.record.attr_bytes == 4
        np.testing.assert_allclose(
            restored.forest.predict(test_X), small_forest.predict(test_X), rtol=1e-6
        )

    def test_version_check(self, layout, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "layout.npz"
        save_layout(layout, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["format_version"] = 99
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_layout(path)
