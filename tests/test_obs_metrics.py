"""Metrics registry: counters, gauges, histograms, traffic adoption."""

from __future__ import annotations

import pytest

from repro.gpusim.counters import TrafficCounters
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    c = Counter("n")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_keeps_last_value():
    g = Gauge("t")
    g.set(1.0)
    g.set(0.25)
    assert g.value == 0.25


def test_raw_histogram_stats_and_quantiles_are_exact():
    h = Histogram("lat", raw=True)
    for v in [3.0, 1.0, 4.0, 2.0]:
        h.observe(v)
    assert h.count == 4
    assert h.total == 10.0
    assert h.mean == 2.5
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 4.0
    assert h.quantile(0.5) == 2.0  # nearest-rank
    assert h.observations == [1.0, 2.0, 3.0, 4.0]  # kept sorted on insert
    s = h.summary()
    assert s["count"] == 4 and s["min"] == 1.0 and s["max"] == 4.0


def test_streaming_histogram_is_default_and_approximate():
    h = Histogram("lat")
    for v in [1.0, 2.0, 3.0, 4.0]:
        h.observe(v)
    assert h.count == 4
    assert h.total == 10.0
    assert h.min == 1.0 and h.max == 4.0
    # log-bucketed: quantiles land within the bucket's relative error
    assert h.quantile(0.5) == pytest.approx(2.0, rel=0.05)
    assert h.quantile(1.0) == pytest.approx(4.0, rel=0.05)
    with pytest.raises(TypeError, match="streaming"):
        _ = h.observations


def test_histogram_merge_and_mode_mismatch():
    a = Histogram("lat")
    b = Histogram("lat")
    for v in (1.0, 2.0):
        a.observe(v)
    b.observe(3.0)
    a.merge(b)
    assert a.count == 3 and a.max == 3.0
    with pytest.raises(TypeError, match="raw and streaming"):
        a.merge(Histogram("lat", raw=True))


def test_empty_histogram_summary_is_safe():
    for h in (Histogram("empty"), Histogram("empty_raw", raw=True)):
        assert h.count == 0
        assert h.mean == 0.0
        s = h.summary()
        assert s["count"] == 0


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    c1 = reg.counter("batches")
    c2 = reg.counter("batches")
    assert c1 is c2
    with pytest.raises(TypeError):
        reg.gauge("batches")
    names = {m.name for m in reg}
    assert names == {"batches"}


def test_record_traffic_adopts_gpusim_counters():
    tc = TrafficCounters()
    tc.forest_global.add(requested=1024, fetched=2048, transactions=16, accesses=32)
    tc.shared_read.add(requested=256, fetched=256, transactions=8, accesses=8)
    reg = MetricsRegistry()
    reg.record_traffic(tc)
    reg.record_traffic(tc)  # counters accumulate across kernels
    snap = reg.snapshot()
    assert snap["counters"]["traffic.forest_global.fetched_bytes"] == 4096.0
    assert snap["counters"]["traffic.forest_global.transactions"] == 32.0
    assert snap["counters"]["traffic.shared_read.requested_bytes"] == 512.0
    # coalescing quality: one load-efficiency observation per kernel
    eff = snap["histograms"]["traffic.forest_global.load_efficiency"]
    assert eff["count"] == 2
    assert eff["mean"] == 0.5  # 1024 requested / 2048 fetched


def test_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("a").inc(2)
    reg.gauge("b").set(7)
    reg.histogram("c").observe(1.5)
    snap = reg.snapshot()
    assert snap["counters"]["a"] == 2.0
    assert snap["gauges"]["b"] == 7.0
    assert snap["histograms"]["c"]["count"] == 1
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
