"""Tests for the Forest container."""

import numpy as np
import pytest

from repro.trees.forest import Forest
from repro.trees.tree import DecisionTree


def _two_leaf_forest():
    t1 = DecisionTree.single_leaf(1.0)
    t2 = DecisionTree.single_leaf(3.0)
    return Forest(trees=[t1, t2], n_attributes=2, task="regression", aggregation="mean")


class TestConstruction:
    def test_requires_trees(self):
        with pytest.raises(ValueError, match="at least one"):
            Forest(trees=[], n_attributes=2)

    def test_rejects_unknown_aggregation(self):
        with pytest.raises(ValueError, match="aggregation"):
            Forest(trees=[DecisionTree.single_leaf(0)], n_attributes=1, aggregation="max")

    def test_rejects_out_of_range_features(self, manual_tree):
        with pytest.raises(ValueError, match="references attribute"):
            Forest(trees=[manual_tree], n_attributes=1)

    def test_counts(self, small_forest):
        assert small_forest.n_trees == 24
        assert small_forest.n_nodes == sum(t.n_nodes for t in small_forest.trees)
        assert small_forest.max_depth() == small_forest.tree_depths().max()

    def test_distinct_attributes_sorted_unique(self, small_forest):
        attrs = small_forest.distinct_attributes()
        assert np.all(np.diff(attrs) > 0)
        assert attrs.max() < small_forest.n_attributes


class TestPrediction:
    def test_mean_aggregation(self):
        forest = _two_leaf_forest()
        X = np.zeros((4, 2), dtype=np.float32)
        np.testing.assert_allclose(forest.predict(X), 2.0)

    def test_sum_aggregation_with_base_and_lr(self):
        t1 = DecisionTree.single_leaf(1.0)
        t2 = DecisionTree.single_leaf(3.0)
        forest = Forest(
            trees=[t1, t2],
            n_attributes=2,
            task="regression",
            aggregation="sum",
            base_score=10.0,
            learning_rate=0.5,
        )
        X = np.zeros((2, 2), dtype=np.float32)
        np.testing.assert_allclose(forest.predict(X), 10.0 + 0.5 * 4.0)

    def test_classification_sum_applies_sigmoid(self):
        t = DecisionTree.single_leaf(0.0)
        forest = Forest(
            trees=[t], n_attributes=1, task="classification", aggregation="sum"
        )
        X = np.zeros((1, 1), dtype=np.float32)
        assert forest.predict(X)[0] == pytest.approx(0.5)

    def test_predict_class_threshold(self, small_forest, test_X):
        proba = small_forest.predict(test_X)
        labels = small_forest.predict_class(test_X)
        np.testing.assert_array_equal(labels, (proba > 0.5).astype(np.int32))

    def test_predict_class_rejects_regression(self):
        forest = _two_leaf_forest()
        with pytest.raises(ValueError):
            forest.predict_class(np.zeros((1, 2), dtype=np.float32))


class TestReordering:
    def test_reorder_preserves_predictions(self, small_forest, test_X):
        order = list(reversed(range(small_forest.n_trees)))
        shuffled = small_forest.reordered(order)
        np.testing.assert_allclose(
            shuffled.predict(test_X), small_forest.predict(test_X), rtol=1e-6
        )

    def test_reorder_permutes_trees(self, small_forest):
        order = list(reversed(range(small_forest.n_trees)))
        shuffled = small_forest.reordered(order)
        assert shuffled.trees[0] is small_forest.trees[-1]

    def test_reorder_rejects_non_permutation(self, small_forest):
        with pytest.raises(ValueError, match="permutation"):
            small_forest.reordered([0] * small_forest.n_trees)

    def test_with_trees_keeps_metadata(self, small_forest):
        sub = small_forest.with_trees(small_forest.trees[:3])
        assert sub.n_trees == 3
        assert sub.task == small_forest.task
        assert sub.aggregation == small_forest.aggregation

    def test_copy_is_deep(self, small_forest, test_X):
        dup = small_forest.copy()
        dup.trees[0].threshold[0] = 1e9
        np.testing.assert_allclose(
            small_forest.predict(test_X), small_forest.copy().predict(test_X)
        )
