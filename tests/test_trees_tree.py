"""Tests for the DecisionTree data model."""

import numpy as np
import pytest

from repro.trees.tree import LEAF, DecisionTree


class TestConstruction:
    def test_single_leaf(self):
        tree = DecisionTree.single_leaf(2.5)
        assert tree.n_nodes == 1
        assert tree.n_leaves == 1
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict(np.zeros((3, 2), np.float32)), 2.5)

    def test_manual_tree_valid(self, manual_tree):
        assert manual_tree.n_nodes == 7
        assert manual_tree.n_leaves == 4
        assert manual_tree.depth() == 3

    def test_rejects_length_mismatch(self, manual_tree):
        with pytest.raises(ValueError, match="length"):
            DecisionTree(
                feature=manual_tree.feature,
                threshold=manual_tree.threshold[:-1],
                left=manual_tree.left,
                right=manual_tree.right,
                value=manual_tree.value,
                default_left=manual_tree.default_left,
                visit_count=manual_tree.visit_count,
            )

    def test_rejects_leaf_with_children(self, manual_tree):
        bad = manual_tree.copy()
        bad.left[1] = 3  # node 1 is a leaf
        with pytest.raises(ValueError, match="leaf"):
            bad.validate()

    def test_rejects_self_loop(self, manual_tree):
        bad = manual_tree.copy()
        bad.left[0] = 0
        with pytest.raises(ValueError, match="own child"):
            bad.validate()

    def test_rejects_multi_parent(self, manual_tree):
        bad = manual_tree.copy()
        bad.left[0] = 2  # node 2 now has two parents, node 1 orphaned
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTree(
                feature=np.array([], dtype=np.int32),
                threshold=np.array([], dtype=np.float32),
                left=np.array([], dtype=np.int32),
                right=np.array([], dtype=np.int32),
                value=np.array([], dtype=np.float32),
                default_left=np.array([], dtype=bool),
                visit_count=np.array([], dtype=np.int64),
            )


class TestTopology:
    def test_node_depths(self, manual_tree):
        depths = manual_tree.node_depths()
        np.testing.assert_array_equal(depths, [0, 1, 1, 2, 2, 3, 3])

    def test_parents(self, manual_tree):
        parents = manual_tree.parents()
        np.testing.assert_array_equal(parents, [-1, 0, 0, 2, 2, 4, 4])

    def test_level_order(self, manual_tree):
        levels = manual_tree.level_order()
        assert levels == [[0], [1, 2], [3, 4], [5, 6]]

    def test_root_to_leaf_paths(self, manual_tree):
        paths = manual_tree.root_to_leaf_paths()
        assert [0, 1] in paths
        assert [0, 2, 3] in paths
        assert [0, 2, 4, 5] in paths
        assert [0, 2, 4, 6] in paths
        assert len(paths) == manual_tree.n_leaves


class TestProbabilities:
    def test_edge_probabilities_sum_to_one(self, manual_tree):
        p_left, p_right = manual_tree.edge_probabilities()
        decision = ~manual_tree.is_leaf
        np.testing.assert_allclose(p_left[decision] + p_right[decision], 1.0)

    def test_edge_probability_values(self, manual_tree):
        p_left, p_right = manual_tree.edge_probabilities()
        assert p_left[0] == pytest.approx(0.2)
        assert p_right[0] == pytest.approx(0.8)

    def test_unvisited_node_gets_half(self, manual_tree):
        tree = manual_tree.copy()
        tree.visit_count[0] = 0
        p_left, _ = tree.edge_probabilities()
        assert p_left[0] == pytest.approx(0.5)

    def test_node_probabilities_match_visit_ratio(self, manual_tree):
        probs = manual_tree.node_probabilities()
        expected = manual_tree.visit_count / manual_tree.visit_count[0]
        np.testing.assert_allclose(probs, expected)

    def test_root_probability_is_one(self, manual_tree):
        assert manual_tree.node_probabilities()[0] == 1.0


class TestPrediction:
    def test_known_paths(self, manual_tree):
        X = np.array(
            [
                [0.0, 0.0],   # f0 < 0.5 -> node 1 -> value 1
                [1.0, -2.0],  # right, f1 < -1 -> node 3 -> value 2
                [1.0, 0.0],   # right, right, f0 < 2 -> node 5 -> value 3
                [3.0, 0.0],   # right, right, right -> node 6 -> value 4
            ],
            dtype=np.float32,
        )
        np.testing.assert_allclose(manual_tree.predict(X), [1, 2, 3, 4])

    def test_missing_value_takes_default(self, manual_tree):
        x = np.array([[np.nan, 0.0]], dtype=np.float32)
        # default_left[0] is True -> node 1 -> value 1
        assert manual_tree.predict(x)[0] == 1.0

    def test_missing_value_default_right(self, manual_tree):
        x = np.array([[1.0, np.nan]], dtype=np.float32)
        # node 2 has default_left False -> node 4; f0=1 < 2 -> node 5
        assert manual_tree.predict(x)[0] == 3.0

    def test_flip_inverts_predicate(self, manual_tree):
        flipped = manual_tree.copy()
        flipped.left[0], flipped.right[0] = flipped.right[0], flipped.left[0]
        flipped.flip[0] = True
        flipped.default_left[0] = not flipped.default_left[0]
        X = np.array([[0.0, 0.0], [1.0, -2.0], [3.0, 0.0]], dtype=np.float32)
        np.testing.assert_allclose(flipped.predict(X), manual_tree.predict(X))

    def test_decision_path_matches_predict(self, manual_tree):
        x = np.array([1.0, 0.0], dtype=np.float32)
        path = manual_tree.decision_path(x)
        assert path == [0, 2, 4, 5]
        assert manual_tree.value[path[-1]] == manual_tree.predict(x[None, :])[0]

    def test_predict_rejects_1d(self, manual_tree):
        with pytest.raises(ValueError, match="2-D"):
            manual_tree.predict(np.zeros(2, dtype=np.float32))

    def test_copy_is_deep(self, manual_tree):
        dup = manual_tree.copy()
        dup.threshold[0] = 99.0
        assert manual_tree.threshold[0] != 99.0
