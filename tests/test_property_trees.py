"""Property-based tests for tree invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.node_rearrange import rearrange_nodes_by_probability
from repro.trees.cart import CartConfig, bin_features, build_tree
from repro.trees.probabilities import route_counts
from repro.trees.pruning import prune_tree
from repro.trees.tree import LEAF, DecisionTree


@st.composite
def random_trees(draw):
    """Generate a structurally valid random decision tree.

    Trees are built top-down: each node flips a coin (depth-damped) to
    become a split or a leaf; visit counts are distributed consistently
    (children sum to the parent).
    """
    seed = draw(st.integers(0, 2**31 - 1))
    n_features = draw(st.integers(1, 6))
    max_depth = draw(st.integers(1, 6))
    rng = np.random.default_rng(seed)
    feature, threshold, left, right = [], [], [], []
    value, default_left, visits = [], [], []

    def grow(depth, visit):
        node = len(feature)
        feature.append(LEAF)
        threshold.append(0.0)
        left.append(LEAF)
        right.append(LEAF)
        value.append(float(rng.standard_normal()))
        default_left.append(bool(rng.random() < 0.5))
        visits.append(int(visit))
        if depth < max_depth and visit >= 2 and rng.random() < 0.7:
            feature[node] = int(rng.integers(0, n_features))
            threshold[node] = float(rng.standard_normal())
            lv = int(rng.integers(1, visit))
            left[node] = grow(depth + 1, lv)
            right[node] = grow(depth + 1, visit - lv)
        return node

    grow(0, draw(st.integers(2, 500)))
    tree = DecisionTree(
        feature=np.array(feature, dtype=np.int32),
        threshold=np.array(threshold, dtype=np.float32),
        left=np.array(left, dtype=np.int32),
        right=np.array(right, dtype=np.int32),
        value=np.array(value, dtype=np.float32),
        default_left=np.array(default_left),
        visit_count=np.array(visits, dtype=np.int64),
    )
    return tree, n_features, seed


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_generated_trees_validate(tree_info):
    tree, _, _ = tree_info
    tree.validate()


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_node_probabilities_consistent_with_visits(tree_info):
    tree, _, _ = tree_info
    probs = tree.node_probabilities()
    expected = tree.visit_count / tree.visit_count[0]
    np.testing.assert_allclose(probs, expected, rtol=1e-9)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_rearrangement_preserves_predictions(tree_info):
    """The core safety property of section 4.1: child swapping never
    changes any prediction, missing values included."""
    tree, n_features, seed = tree_info
    rng = np.random.default_rng(seed + 1)
    X = rng.standard_normal((64, n_features)).astype(np.float32)
    X[rng.random(X.shape) < 0.1] = np.nan
    out = rearrange_nodes_by_probability(tree)
    np.testing.assert_array_equal(out.predict(X), tree.predict(X))


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_rearrangement_hot_child_left(tree_info):
    tree, _, _ = tree_info
    out = rearrange_nodes_by_probability(tree)
    p_left, p_right = out.edge_probabilities()
    decision = ~out.is_leaf
    assert np.all(p_left[decision] >= p_right[decision] - 1e-12)


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_pruning_never_grows(tree_info):
    tree, _, _ = tree_info
    pruned = prune_tree(tree, alpha=0.1)
    assert pruned.n_nodes <= tree.n_nodes
    pruned.validate()


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_route_counts_conserve_flow(tree_info):
    tree, n_features, seed = tree_info
    rng = np.random.default_rng(seed + 2)
    X = rng.standard_normal((50, n_features)).astype(np.float32)
    counts = route_counts(tree, X)
    assert counts[0] == 50
    for node in range(tree.n_nodes):
        if not tree.is_leaf[node]:
            assert counts[tree.left[node]] + counts[tree.right[node]] == counts[node]


@given(
    st.integers(0, 2**31 - 1),
    st.integers(1, 5),
    st.integers(16, 200),
)
@settings(max_examples=30, deadline=None)
def test_cart_depth_and_leaf_invariants(seed, max_depth, n):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 3)).astype(np.float32)
    y = rng.standard_normal(n)
    tree = build_tree(bin_features(X), y, CartConfig(max_depth=max_depth))
    tree.validate()
    assert tree.depth() <= max_depth
    # Leaf visit counts partition the training set.
    assert tree.visit_count[tree.is_leaf].sum() == n
