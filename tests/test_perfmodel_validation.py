"""Tests for the selection-validation utility."""

import numpy as np
import pytest

from repro.formats import build_adaptive_layout
from repro.perfmodel.validation import validate_selection


@pytest.fixture(scope="module")
def layout(request):
    return build_adaptive_layout(request.getfixturevalue("small_forest"))


class TestValidateSelection:
    def test_report_structure(self, layout, test_X, p100):
        report = validate_selection(layout, test_X, p100, [40, 120], label="letter")
        assert report.n_cases == 2
        assert 0 <= report.n_exact <= 2
        for case in report.cases:
            assert case.penalty >= 1.0
            assert case.predicted in case.measured
            assert case.best in case.measured
            assert case.label.startswith("letter@")

    def test_exactness_implies_unit_penalty(self, layout, test_X, p100):
        report = validate_selection(layout, test_X, p100, [60])
        for case in report.cases:
            if case.exact:
                assert case.penalty == pytest.approx(1.0)

    def test_near_optimal_counts(self, layout, test_X, p100):
        report = validate_selection(layout, test_X, p100, [60, 120])
        assert report.near_optimal(tolerance=1e9) == report.n_cases
        assert report.near_optimal(tolerance=1.0 + 1e-9) >= report.n_exact

    def test_selector_is_reasonable_here(self, layout, test_X, p100):
        """On this small forest the models should pick something within
        2x of optimal at every batch size."""
        report = validate_selection(layout, test_X, p100, [40, 120])
        assert report.worst_penalty <= 2.0

    def test_mispredictions_listed(self, layout, test_X, p100):
        report = validate_selection(layout, test_X, p100, [40, 120])
        assert len(report.mispredictions()) == report.n_cases - report.n_exact
