"""Tests for forest (de)serialisation."""

import numpy as np
import pytest

from repro.trees.io import forest_from_dict, forest_to_dict, load_forest, save_forest


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, small_forest, test_X):
        restored = forest_from_dict(forest_to_dict(small_forest))
        np.testing.assert_allclose(
            restored.predict(test_X), small_forest.predict(test_X)
        )

    def test_dict_round_trip_preserves_structure(self, small_gbdt):
        restored = forest_from_dict(forest_to_dict(small_gbdt))
        assert restored.n_trees == small_gbdt.n_trees
        assert restored.aggregation == "sum"
        assert restored.base_score == pytest.approx(small_gbdt.base_score)
        assert restored.learning_rate == pytest.approx(small_gbdt.learning_rate)
        for a, b in zip(restored.trees, small_gbdt.trees):
            np.testing.assert_array_equal(a.feature, b.feature)
            np.testing.assert_array_equal(a.visit_count, b.visit_count)
            np.testing.assert_array_equal(a.flip, b.flip)

    def test_file_round_trip(self, small_forest, test_X, tmp_path):
        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        restored = load_forest(path)
        np.testing.assert_allclose(
            restored.predict(test_X), small_forest.predict(test_X)
        )

    def test_flip_bits_survive(self, small_forest, test_X):
        from repro.formats.node_rearrange import rearrange_forest_nodes

        rearranged = rearrange_forest_nodes(small_forest)
        restored = forest_from_dict(forest_to_dict(rearranged))
        assert any(t.flip.any() for t in restored.trees)
        np.testing.assert_allclose(
            restored.predict(test_X), small_forest.predict(test_X), rtol=1e-6
        )

    def test_missing_flip_defaults_false(self, small_forest):
        payload = forest_to_dict(small_forest)
        for tree in payload["trees"]:
            del tree["flip"]
        restored = forest_from_dict(payload)
        assert not any(t.flip.any() for t in restored.trees)

    def test_unknown_version_rejected(self, small_forest):
        payload = forest_to_dict(small_forest)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            forest_from_dict(payload)

    def test_payload_is_json_compatible(self, small_forest):
        import json

        json.dumps(forest_to_dict(small_forest))  # must not raise
