"""Tests for forest (de)serialisation."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.forest import Forest
from repro.trees.io import forest_from_dict, forest_to_dict, load_forest, save_forest
from repro.trees.tree import LEAF, DecisionTree


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, small_forest, test_X):
        restored = forest_from_dict(forest_to_dict(small_forest))
        np.testing.assert_allclose(
            restored.predict(test_X), small_forest.predict(test_X)
        )

    def test_dict_round_trip_preserves_structure(self, small_gbdt):
        restored = forest_from_dict(forest_to_dict(small_gbdt))
        assert restored.n_trees == small_gbdt.n_trees
        assert restored.aggregation == "sum"
        assert restored.base_score == pytest.approx(small_gbdt.base_score)
        assert restored.learning_rate == pytest.approx(small_gbdt.learning_rate)
        for a, b in zip(restored.trees, small_gbdt.trees):
            np.testing.assert_array_equal(a.feature, b.feature)
            np.testing.assert_array_equal(a.visit_count, b.visit_count)
            np.testing.assert_array_equal(a.flip, b.flip)

    def test_file_round_trip(self, small_forest, test_X, tmp_path):
        path = tmp_path / "forest.json"
        save_forest(small_forest, path)
        restored = load_forest(path)
        np.testing.assert_allclose(
            restored.predict(test_X), small_forest.predict(test_X)
        )

    def test_flip_bits_survive(self, small_forest, test_X):
        from repro.formats.node_rearrange import rearrange_forest_nodes

        rearranged = rearrange_forest_nodes(small_forest)
        restored = forest_from_dict(forest_to_dict(rearranged))
        assert any(t.flip.any() for t in restored.trees)
        np.testing.assert_allclose(
            restored.predict(test_X), small_forest.predict(test_X), rtol=1e-6
        )

    def test_missing_flip_defaults_false(self, small_forest):
        payload = forest_to_dict(small_forest)
        for tree in payload["trees"]:
            del tree["flip"]
        restored = forest_from_dict(payload)
        assert not any(t.flip.any() for t in restored.trees)

    def test_unknown_version_rejected(self, small_forest):
        payload = forest_to_dict(small_forest)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            forest_from_dict(payload)

    def test_payload_is_json_compatible(self, small_forest):
        json.dumps(forest_to_dict(small_forest))  # must not raise


class TestFormatVersions:
    def test_writer_default_is_v2(self, small_forest):
        payload = forest_to_dict(small_forest)
        assert payload["format_version"] == 2
        assert "b64" in payload["trees"][0]["threshold"]

    def test_v1_still_written_on_request(self, small_forest, test_X):
        payload = forest_to_dict(small_forest, format_version=1)
        assert payload["format_version"] == 1
        assert isinstance(payload["trees"][0]["threshold"], list)
        restored = forest_from_dict(payload)
        np.testing.assert_array_equal(
            restored.predict(test_X), small_forest.predict(test_X)
        )

    def test_v2_is_smaller_on_disk(self, small_forest):
        v1 = json.dumps(forest_to_dict(small_forest, format_version=1))
        v2 = json.dumps(forest_to_dict(small_forest, format_version=2))
        assert len(v2) < len(v1)

    def test_v1_file_loads_with_v2_loader(self, small_forest, test_X, tmp_path):
        path = tmp_path / "legacy.json"
        save_forest(small_forest, path, format_version=1)
        restored = load_forest(path)
        np.testing.assert_array_equal(
            restored.predict(test_X), small_forest.predict(test_X)
        )

    def test_unknown_writer_version_rejected(self, small_forest):
        with pytest.raises(ValueError, match="version"):
            forest_to_dict(small_forest, format_version=3)


def _property_forest(thresholds, values, visits, defaults, flips) -> Forest:
    """Graft hypothesis-generated payloads onto a fixed 7-node shape."""
    tree = DecisionTree(
        feature=np.array([0, LEAF, 1, LEAF, 0, LEAF, LEAF], dtype=np.int32),
        threshold=np.array(thresholds, dtype=np.float32),
        left=np.array([1, LEAF, 3, LEAF, 5, LEAF, LEAF], dtype=np.int32),
        right=np.array([2, LEAF, 4, LEAF, 6, LEAF, LEAF], dtype=np.int32),
        value=np.array(values, dtype=np.float32),
        default_left=np.array(defaults, dtype=bool),
        visit_count=np.array(visits, dtype=np.int64),
        flip=np.array(flips, dtype=bool),
    )
    return Forest(trees=[tree], n_attributes=2)


_f32 = st.floats(width=32, allow_nan=False)
_seven = lambda elems: st.lists(elems, min_size=7, max_size=7)  # noqa: E731


class TestExactRoundTripProperty:
    """Both on-disk versions must round-trip dtype and value exactly."""

    @settings(max_examples=50, deadline=None)
    @given(
        thresholds=_seven(_f32),
        values=_seven(_f32),
        visits=_seven(st.integers(min_value=1, max_value=2**62)),
        defaults=_seven(st.booleans()),
        flips=_seven(st.booleans()),
        version=st.sampled_from([1, 2]),
    )
    def test_bit_exact_round_trip(
        self, thresholds, values, visits, defaults, flips, version
    ):
        forest = _property_forest(thresholds, values, visits, defaults, flips)
        # Through a real JSON string, exactly as save_forest/load_forest do.
        payload = json.loads(
            json.dumps(forest_to_dict(forest, format_version=version))
        )
        restored = forest_from_dict(payload)
        a, b = forest.trees[0], restored.trees[0]
        for name in (
            "feature", "threshold", "left", "right", "value",
            "default_left", "visit_count", "flip",
        ):
            got, want = getattr(b, name), getattr(a, name)
            assert got.dtype == want.dtype, f"{name} dtype drifted (v{version})"
            np.testing.assert_array_equal(got, want, err_msg=f"{name} (v{version})")
        # Bit-exactness of the float payloads, not just value equality.
        np.testing.assert_array_equal(
            b.threshold.view(np.int32), a.threshold.view(np.int32)
        )
        np.testing.assert_array_equal(b.value.view(np.int32), a.value.view(np.int32))
