"""Tracer: span nesting, disabled-mode behaviour, capacity backstop."""

from __future__ import annotations

import time

from repro.obs.trace import Tracer, current_tracer, span, use_tracer


def test_span_records_name_category_and_args():
    tracer = Tracer(enabled=True)
    with tracer.span("convert", category="conversion", trees=8):
        pass
    (s,) = tracer.spans
    assert s.name == "convert"
    assert s.category == "conversion"
    assert s.args == {"trees": 8}
    assert s.duration >= 0
    assert s.end >= s.start


def test_span_nesting_depths_and_completion_order():
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("inner"):
            with tracer.span("innermost"):
                pass
        with tracer.span("sibling"):
            pass
    names = [s.name for s in tracer.spans]
    # Spans land in completion order: innermost first, outer last.
    assert names == ["innermost", "inner", "sibling", "outer"]
    depths = {s.name: s.depth for s in tracer.spans}
    assert depths == {"outer": 0, "inner": 1, "innermost": 2, "sibling": 1}
    # Children are contained within the parent interval.
    outer = tracer.find("outer")[0]
    for child in tracer.spans[:-1]:
        assert child.start >= outer.start
        assert child.end <= outer.end + 1e-9


def test_set_attaches_args_mid_span():
    tracer = Tracer(enabled=True)
    with tracer.span("kernel") as s:
        s.set(node_visits=123)
    assert tracer.spans[0].args["node_visits"] == 123


def test_disabled_tracer_records_nothing_and_reuses_null_span():
    tracer = Tracer(enabled=False)
    a = tracer.span("x")
    b = tracer.span("y", category="z", arg=1)
    assert a is b  # the shared no-op: no per-call allocation
    with a as s:
        s.set(anything=1)  # must be accepted and discarded
    assert tracer.spans == []


def test_module_level_span_is_noop_without_active_tracer():
    before = len(current_tracer().spans)
    with span("orphan"):
        pass
    assert len(current_tracer().spans) == before
    assert not current_tracer().enabled


def test_use_tracer_installs_and_restores():
    tracer = Tracer(enabled=True)
    default = current_tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with span("inside"):
            pass
        # Reentrant: installing the same tracer again is harmless.
        with use_tracer(tracer):
            with span("nested-install"):
                pass
    assert current_tracer() is default
    assert [s.name for s in tracer.spans] == ["inside", "nested-install"]


def test_max_spans_backstop_counts_drops():
    tracer = Tracer(enabled=True, max_spans=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3


def test_reset_clears_spans_and_restarts_epoch():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        pass
    old_epoch = tracer.epoch
    time.sleep(0.001)
    tracer.reset()
    assert tracer.spans == []
    assert tracer.dropped == 0
    assert tracer.epoch > old_epoch


def test_disabled_span_overhead_is_negligible():
    """Disabled tracing must stay out of the hot path.

    The bound is deliberately generous (5 µs/span — two orders above
    the observed cost) so the test never flakes on slow CI machines
    while still catching an accidental clock read or allocation storm.
    """
    tracer = Tracer(enabled=False)
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tracer.span("hot", category="kernel", batch=1):
            pass
    per_span = (time.perf_counter() - t0) / n
    assert per_span < 5e-6
    assert tracer.spans == []
