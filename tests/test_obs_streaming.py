"""StreamingHistogram: quantile-error bounds pinned against numpy.

The streaming histogram's contract is "nearest-rank quantiles within one
log bucket".  ``np.quantile(..., method="inverted_cdf")`` *is* the exact
nearest-rank quantile, so the property tests here compare against it on
hypothesis-generated adversarial distributions: the estimate must land
within the bucket's relative error (``growth**2``, covering midpoint
placement plus float boundary slack) of the exact sample.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.streaming import StreamingHistogram

#: Range where every observation lands in a regular log bucket (not the
#: underflow/overflow bins) for the default lo=1e-9, hi=1e9 geometry.
_values = st.floats(
    min_value=1e-8, max_value=1e8, allow_nan=False, allow_infinity=False
)
_value_lists = st.lists(_values, min_size=1, max_size=300)
_quantiles = st.floats(min_value=0.001, max_value=1.0)


def _fill(values, **kwargs):
    h = StreamingHistogram(**kwargs)
    for v in values:
        h.observe(v)
    return h


@given(values=_value_lists, q=_quantiles)
@settings(max_examples=200, deadline=None)
def test_quantile_tracks_numpy_nearest_rank(values, q):
    h = _fill(values)
    exact = float(np.quantile(np.array(values), q, method="inverted_cdf"))
    estimate = h.quantile(q)
    bound = h.growth**2
    assert exact / bound <= estimate <= exact * bound


@given(values=_value_lists)
@settings(max_examples=100, deadline=None)
def test_exact_moments_and_extremes(values):
    h = _fill(values)
    assert h.count == len(values)
    assert h.total == pytest.approx(math.fsum(values), rel=1e-12)
    assert h.min == min(values)
    assert h.max == max(values)
    # Quantile estimates never escape the observed range.
    for q in (0.0, 0.25, 0.5, 0.999, 1.0):
        assert min(values) <= h.quantile(q) <= max(values)


@given(a=_value_lists, b=_value_lists)
@settings(max_examples=100, deadline=None)
def test_merge_equals_concatenated_observation(a, b):
    merged = _fill(a)
    merged.merge(_fill(b))
    combined = _fill(a + b)
    assert merged.count == combined.count
    assert merged.total == pytest.approx(combined.total, rel=1e-12)
    for q in (0.1, 0.5, 0.95, 0.99):
        assert merged.quantile(q) == combined.quantile(q)


def test_merge_rejects_mismatched_geometry():
    a = StreamingHistogram(growth=1.04)
    b = StreamingHistogram(growth=1.1)
    assert not a.compatible_with(b)
    with pytest.raises(ValueError):
        a.merge(b)


def test_underflow_and_overflow_clamp_to_observed_extremes():
    h = StreamingHistogram(lo=1e-3, hi=1e3)
    h.observe(1e-9)  # underflow bucket
    h.observe(5.0)
    h.observe(1e6)  # overflow bucket
    assert h.count == 3
    assert h.quantile(0.0) == 1e-9
    assert h.quantile(1.0) == 1e6
    s = h.summary()
    assert s["min"] == 1e-9 and s["max"] == 1e6


def test_empty_histogram_is_safe():
    h = StreamingHistogram()
    assert h.count == 0
    assert h.quantile(0.5) == 0.0
    assert h.summary()["count"] == 0
    assert h.cumulative_buckets() == []


def test_memory_is_bounded_and_quantiles_stay_accurate():
    # A million observations never grow the structure: counts live in a
    # fixed-size bucket array.
    h = StreamingHistogram()
    n_buckets = len(h._counts)
    rng = np.random.default_rng(0)
    values = rng.lognormal(mean=-5.0, sigma=2.0, size=100_000)
    for v in values:
        h.observe(float(v))
    assert len(h._counts) == n_buckets
    exact = float(np.quantile(values, 0.99, method="inverted_cdf"))
    assert h.quantile(0.99) == pytest.approx(exact, rel=0.1)


def test_cumulative_buckets_are_monotone_and_complete():
    h = _fill([0.001, 0.001, 0.5, 2.0, 1e4])
    buckets = h.cumulative_buckets()
    bounds = [b for b, _ in buckets]
    counts = [c for _, c in buckets]
    assert bounds == sorted(bounds)
    assert counts == sorted(counts)
    assert counts[-1] == h.count
