"""NativeEngine: bit-identity with the simulator and engine-contract
behaviour of the wall-clock backend."""

import numpy as np
import pytest

from repro.core import (
    TIME_DOMAIN_SIMULATED,
    TIME_DOMAIN_WALL,
    FILEngine,
    LayoutCache,
    TahoeEngine,
)
from repro.core.native import (
    HAVE_NUMBA,
    NativeEngine,
    available_kernels,
    flatten_native,
)
from repro.formats import build_reorg_layout
from repro.modelstore import load_packed, pack_layout


class TestBitIdentity:
    def test_matches_tahoe_on_random_forest(self, small_forest, p100, test_X):
        native = NativeEngine(small_forest, p100)
        tahoe = TahoeEngine(small_forest, p100)
        assert np.array_equal(
            native.predict(test_X).predictions,
            tahoe.predict(test_X).predictions,
        )

    def test_matches_tahoe_on_gbdt(self, small_gbdt, p100, test_X):
        native = NativeEngine(small_gbdt, p100)
        tahoe = TahoeEngine(small_gbdt, p100)
        assert np.array_equal(
            native.predict(test_X).predictions,
            tahoe.predict(test_X).predictions,
        )

    def test_matches_fil_on_reorg_layout(self, small_forest, p100, test_X):
        layout = build_reorg_layout(small_forest)
        native = NativeEngine.from_layout(layout, p100)
        fil = FILEngine(small_forest, p100)
        assert np.array_equal(
            native.predict(test_X).predictions,
            fil.predict(test_X).predictions,
        )

    def test_nan_takes_default_path_identically(self, small_forest, p100, test_X):
        X = test_X.copy()
        X[::3, 0] = np.nan
        X[1::5, 2] = np.nan
        native = NativeEngine(small_forest, p100)
        tahoe = TahoeEngine(small_forest, p100)
        assert np.array_equal(
            native.predict(X).predictions, tahoe.predict(X).predictions
        )

    def test_scalar_kernel_matches_numpy(self, small_forest, p100, test_X):
        fast = NativeEngine(small_forest, p100, kernel="numpy")
        slow = NativeEngine(small_forest, p100, kernel="scalar")
        assert np.array_equal(
            fast.predict(test_X).predictions, slow.predict(test_X).predictions
        )

    def test_batch_size_does_not_change_predictions(
        self, small_forest, p100, test_X
    ):
        engine = NativeEngine(small_forest, p100)
        whole = engine.predict(test_X).predictions
        batched = engine.predict(test_X, batch_size=17).predictions
        assert np.array_equal(whole, batched)


class TestEngineContract:
    def test_empty_batch_raises(self, small_forest, p100):
        engine = NativeEngine(small_forest, p100)
        with pytest.raises(ValueError, match="empty inference batch"):
            engine.predict(np.empty((0, small_forest.n_attributes)))

    def test_result_is_wall_domain(self, small_forest, p100, test_X):
        engine = NativeEngine(small_forest, p100)
        result = engine.predict(test_X)
        assert NativeEngine.time_domain == TIME_DOMAIN_WALL
        assert result.time_domain == TIME_DOMAIN_WALL
        assert result.time_domain != TIME_DOMAIN_SIMULATED

    def test_throughput_is_wall_samples_per_second(
        self, small_forest, p100, test_X
    ):
        result = NativeEngine(small_forest, p100).predict(test_X)
        assert result.total_time > 0
        assert result.throughput == pytest.approx(
            test_X.shape[0] / result.total_time
        )

    def test_update_forest_swaps_predictions(
        self, small_forest, small_gbdt, p100, test_X
    ):
        engine = NativeEngine(small_forest, p100)
        before = engine.predict(test_X).predictions
        stats = engine.update_forest(small_gbdt)
        assert stats.total > 0 or stats.source == "cache"
        after = engine.predict(test_X).predictions
        assert not np.array_equal(before, after)
        assert np.array_equal(
            after, TahoeEngine(small_gbdt, p100).predict(test_X).predictions
        )

    def test_unknown_kernel_rejected(self, small_forest, p100):
        with pytest.raises(ValueError, match="unknown native kernel"):
            NativeEngine(small_forest, p100, kernel="cuda")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_numba_kernel_rejected_without_numba(self, small_forest, p100):
        with pytest.raises(ValueError, match="numba is not installed"):
            NativeEngine(small_forest, p100, kernel="numba")

    def test_available_kernels_reflect_environment(self):
        kernels = available_kernels()
        assert "numpy" in kernels and "scalar" in kernels
        assert ("numba" in kernels) == HAVE_NUMBA

    def test_report_carries_native_identity(self, small_forest, p100, test_X):
        engine = NativeEngine(small_forest, p100)
        result = engine.predict(test_X, report=True)
        assert result.report is not None
        assert result.report.engine == "native"
        assert result.report.meta["time_domain"] == TIME_DOMAIN_WALL
        assert result.report.meta["kernel"] == engine.kernel
        assert result.report.decisions


class TestLayoutInterop:
    def test_packed_artifact_round_trip(self, small_forest, p100, test_X, tmp_path):
        direct = NativeEngine(small_forest, p100)
        path = tmp_path / "forest.tahoe"
        pack_layout(
            direct.layout,
            path,
            engine="tahoe",
            spec_name=p100.name,
            conversion_key=direct.config.conversion_key(),
            source_fingerprint=small_forest.fingerprint(),
        )
        packed = load_packed(path).make_engine(p100, backend="native")
        assert isinstance(packed, NativeEngine)
        assert packed.conversion_stats.source == "artifact"
        assert np.array_equal(
            packed.predict(test_X).predictions,
            direct.predict(test_X).predictions,
        )

    def test_shares_layout_cache_with_tahoe(self, small_forest, p100, test_X):
        cache = LayoutCache()
        TahoeEngine(small_forest, p100, layout_cache=cache)
        native = NativeEngine(small_forest, p100, layout_cache=cache)
        assert native.conversion_stats.source == "cache"
        assert cache.hits == 1
        # And the reverse direction: native's conversion seeds tahoe.
        cache2 = LayoutCache()
        NativeEngine(small_forest, p100, layout_cache=cache2)
        tahoe = TahoeEngine(small_forest, p100, layout_cache=cache2)
        assert tahoe.conversion_stats.source == "cache"
        assert np.array_equal(
            native.predict(test_X).predictions,
            tahoe.predict(test_X).predictions,
        )

    def test_flatten_is_cached_on_layout(self, small_forest, p100):
        engine = NativeEngine(small_forest, p100)
        flat = flatten_native(engine.layout)
        assert flat is engine.flat  # second call returns the cached object
        assert flat.n_trees == small_forest.n_trees
        # Leaves self-loop: both children point at the leaf itself.
        leaves = np.flatnonzero(flat.is_leaf)
        assert np.array_equal(flat.child_true[leaves], leaves)
        assert np.array_equal(flat.child_false[leaves], leaves)


class TestFlushCurve:
    def test_measured_curve_covers_candidates(self, small_forest, p100):
        engine = NativeEngine(small_forest, p100)
        curve = engine.measure_flush_curve([16, 64], repeats=1)
        assert set(curve) == {16, 64}
        assert all(v > 0 for v in curve.values())

    def test_probes_do_not_pollute_telemetry(self, small_forest, p100):
        engine = NativeEngine(small_forest, p100)
        before = len(engine.recorder.decisions)
        engine.measure_flush_curve([16, 64], repeats=1)
        assert len(engine.recorder.decisions) == before

    def test_empty_candidates_rejected(self, small_forest, p100):
        engine = NativeEngine(small_forest, p100)
        with pytest.raises(ValueError, match="candidate batch size"):
            engine.measure_flush_curve([])


class TestHardwareRanking:
    def test_decisions_record_both_targets(self, small_forest, p100, test_X):
        engine = NativeEngine(small_forest, p100)
        engine.predict(test_X)
        decision = engine.recorder.decisions[-1]
        names = {c.strategy for c in decision.candidates}
        assert decision.chosen == "native_cpu"
        assert any(name.startswith("gpusim_") for name in names)

    def test_ragged_batch_sizes_reuse_bucketed_ranking(
        self, small_forest, p100, test_X
    ):
        engine = NativeEngine(small_forest, p100)
        engine.predict(test_X[:65])
        engine.predict(test_X[:100])  # same power-of-two bucket (128)
        assert len(engine._ranked_cache) == 1
        # Native predicted time still tracks the exact batch size.
        d65, d100 = engine.recorder.decisions[-2:]
        assert d65.predicted_time < d100.predicted_time
