"""Tests for the two-tier (DRAM + L2) global-memory pricing."""

import numpy as np
import pytest

from repro.gpusim.counters import TrafficCounters
from repro.gpusim.engine_sim import execution_time


def _sample_counters(fetched):
    t = TrafficCounters()
    t.sample_global.add(fetched // 8, fetched, fetched // 128, 100)
    return t


def _forest_counters(fetched):
    t = TrafficCounters()
    t.forest_global.add(fetched // 4, fetched, fetched // 128, 100)
    return t


class TestL2Tier:
    def test_sample_rereads_cheaper_with_small_footprint(self, p100):
        cold = execution_time(
            _sample_counters(1 << 24), p100, 10**5, 256, 400,
            sample_first_touch_bytes=None,
        )
        hot = execution_time(
            _sample_counters(1 << 24), p100, 10**5, 256, 400,
            sample_first_touch_bytes=1 << 16,
        )
        assert hot.t_global < cold.t_global

    def test_first_touch_still_pays_dram(self, p100):
        everything_hot = execution_time(
            _sample_counters(1 << 24), p100, 10**5, 256, 400,
            sample_first_touch_bytes=0,
        )
        expected = (1 << 24) / p100.l2_bw  # util 1 at this launch size
        assert everything_hot.t_global == pytest.approx(expected, rel=1e-6)

    def test_forest_cached_only_when_it_fits(self, p100):
        fits = execution_time(
            _forest_counters(1 << 24), p100, 10**5, 256, 400,
            forest_footprint_bytes=p100.l2_capacity // 2,
        )
        too_big = execution_time(
            _forest_counters(1 << 24), p100, 10**5, 256, 400,
            forest_footprint_bytes=p100.l2_capacity * 2,
        )
        assert fits.t_global < too_big.t_global
        no_info = execution_time(
            _forest_counters(1 << 24), p100, 10**5, 256, 400,
        )
        assert too_big.t_global == pytest.approx(no_info.t_global)

    def test_l2_faster_than_dram_in_spec(self, p100):
        assert p100.l2_bw > p100.global_bw
        assert p100.scaled(compute=1 / 8).l2_bw == pytest.approx(p100.l2_bw / 8)

    def test_footprint_larger_than_traffic_harmless(self, p100):
        r = execution_time(
            _sample_counters(1 << 10), p100, 10**5, 256, 400,
            sample_first_touch_bytes=1 << 20,
        )
        base = execution_time(_sample_counters(1 << 10), p100, 10**5, 256, 400)
        assert r.t_global == pytest.approx(base.t_global)
