"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.trees.io import load_forest, save_forest


@pytest.fixture()
def forest_file(small_forest, tmp_path):
    path = tmp_path / "forest.json"
    save_forest(small_forest, path)
    return path


class TestCli:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "K80" in out and "P100" in out and "V100" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Higgs" in out and "letter" in out
        assert out.count("\n") >= 16  # header + 15 rows

    def test_train_writes_forest(self, tmp_path, capsys):
        out_path = tmp_path / "f.json"
        code = main(
            ["train", "--dataset", "letter", "--scale", "0.08",
             "--tree-scale", "0.05", "--out", str(out_path)]
        )
        assert code == 0
        forest = load_forest(out_path)
        assert forest.n_trees >= 4

    def test_train_rejects_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "mnist", "--out", str(tmp_path / "x.json")])

    def test_convert_reports_saving(self, forest_file, capsys):
        assert main(["convert", "--forest", str(forest_file)]) == 0
        out = capsys.readouterr().out
        assert "adaptive layout" in out
        assert "saved" in out

    def test_rank_lists_strategies(self, forest_file, capsys):
        assert main(
            ["rank", "--forest", str(forest_file), "--gpu", "P100", "--batch", "1000"]
        ) == 0
        out = capsys.readouterr().out
        for name in ("shared_data", "direct", "shared_forest", "splitting"):
            assert name in out

    def test_predict_compares_engines(self, forest_file, capsys):
        code = main(
            ["predict", "--forest", str(forest_file), "--dataset", "letter",
             "--scale", "0.08", "--limit", "80"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Tahoe" in out and "FIL" in out

    def test_predict_cprofile_dumps_pstats(self, forest_file, tmp_path, capsys):
        stats_path = tmp_path / "run.pstats"
        code = main(
            ["predict", "--forest", str(forest_file), "--dataset", "letter",
             "--scale", "0.08", "--limit", "60", "--cprofile", str(stats_path)]
        )
        assert code == 0
        assert "run.pstats" in capsys.readouterr().out
        import pstats

        stats = pstats.Stats(str(stats_path))
        functions = {name for _, _, name in stats.stats}
        assert "_traverse_chunk" in functions

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestProfileCommand:
    def test_profile_reports_structure(self, forest_file, capsys):
        assert main(["profile", "--forest", str(forest_file)]) == 0
        out = capsys.readouterr().out
        assert "hot-path skew" in out
        assert "work dispersion" in out
        assert "depth histogram" in out


class TestServeCommand:
    def test_serve_without_bench_exits(self, capsys):
        assert main(["serve"]) == 2

    def test_serve_bench_quick_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_serving.json"
        code = main(
            ["serve", "--bench", "--quick", "--scale", "0.05",
             "--tree-scale", "0.04", "--out", str(out_path)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "qps" in stdout and "p99" in stdout
        envelope = json.loads(out_path.read_text())
        assert envelope["kind"] == "serving_bench"
        assert envelope["schema_version"] == 2
        # Shared provenance block: what `repro bench diff` keys off.
        run = envelope["run"]
        assert run["run_id"] and run["git_sha"] and run["timestamp"]
        assert run["scenario"].startswith("serving/")
        payload = envelope["payload"]
        s = payload["summary"]
        # The acceptance surface: latency quantiles, batch-size
        # histogram, deadline/rejection counters, cache behaviour.
        assert s["completed"] > 0
        assert s["latency_s"]["p50"] > 0 and s["latency_s"]["p99"] > 0
        assert s["batch_size_histogram"]
        assert "rejected_queue_full" in s and "deadline_misses" in s
        assert s["achieved_qps"] >= 0.9 * min(
            payload["config"]["qps"], s["offered_qps"]
        )
        # Second replica adopted the cached layout: near-zero conversion.
        conv = s["conversions"]
        assert conv[0]["cache_hit"] is False and conv[1]["cache_hit"] is True
        assert conv[1]["total_s"] < conv[0]["total_s"] / 10
        assert payload["report"]["engine"] == "tahoe-serving"

    def test_serve_baseline_trims_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_serving.json"
        code = main(
            ["serve", "--bench", "--quick", "--baseline", "--scale", "0.05",
             "--tree-scale", "0.04", "--out", str(out_path)]
        )
        assert code == 0
        envelope = json.loads(out_path.read_text())
        payload = envelope["payload"]
        # Baseline mode keeps the summary metrics the regression differ
        # gates on but drops the embedded report (the 20k-line bulk:
        # traces, decision logs, per-batch telemetry).
        assert "report" not in payload
        assert payload["config"]["baseline"] is True
        assert payload["summary"]["completed"] > 0
        assert payload["time_domain"] == "simulated"
        assert len(out_path.read_text().splitlines()) < 500

    def test_serve_native_backend_runs_on_wall_clock(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_serving.json"
        code = main(
            ["serve", "--bench", "--quick", "--baseline", "--backend", "native",
             "--scale", "0.05", "--tree-scale", "0.04", "--out", str(out_path)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "backend: native (wall clock)" in stdout
        envelope = json.loads(out_path.read_text())
        payload = envelope["payload"]
        assert payload["time_domain"] == "wall"
        assert payload["config"]["backend"] == "native"
        assert envelope["run"]["scenario"].endswith("/native")

    def test_predict_native_backend_bit_identical(self, forest_file, capsys):
        code = main(
            ["predict", "--forest", str(forest_file), "--dataset", "letter",
             "--scale", "0.05", "--limit", "80", "--backend", "native"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "bit-identical to the simulator: yes" in stdout
        assert "wall" in stdout
