"""Tests for the engine's COA_rate probe and model integration."""

import numpy as np
import pytest

from repro.core import TahoeEngine
from repro.perfmodel.notation import workload_params


class TestCoaProbe:
    def test_probe_runs_on_first_batch(self, small_forest, p100, test_X):
        engine = TahoeEngine(small_forest, p100)
        assert "coa_rate" not in engine.layout.metadata
        engine.predict(test_X)
        assert "coa_rate" in engine.layout.metadata

    def test_probed_rate_in_unit_interval(self, small_forest, p100, test_X):
        engine = TahoeEngine(small_forest, p100)
        engine.predict(test_X)
        rate = engine.layout.metadata["coa_rate"]
        assert 0.01 <= rate <= 1.0

    def test_workload_params_pick_up_probe(self, small_forest, p100, test_X):
        engine = TahoeEngine(small_forest, p100)
        _, fp_before = workload_params(engine.layout, 100)
        assert fp_before.coa_rate == 0.5  # the paper's default assumption
        engine.predict(test_X)
        _, fp_after = workload_params(engine.layout, 100)
        assert fp_after.coa_rate == engine.layout.metadata["coa_rate"]

    def test_reconversion_clears_probe(self, small_forest, small_gbdt, p100, test_X):
        engine = TahoeEngine(small_forest, p100)
        engine.predict(test_X)
        engine.update_forest(small_gbdt)
        assert "coa_rate" not in engine.layout.metadata

    def test_predictions_unaffected_by_probe(self, small_forest, p100, test_X):
        engine = TahoeEngine(small_forest, p100)
        result = engine.predict(test_X)
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X), rtol=1e-5
        )
