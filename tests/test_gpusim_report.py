"""Tests for the execution report formatter."""

import numpy as np

from repro.formats import build_adaptive_layout
from repro.gpusim.report import format_strategy_report
from repro.strategies import DirectStrategy, SharedDataStrategy


class TestFormatStrategyReport:
    def test_contains_key_sections(self, small_forest, test_X, p100):
        layout = build_adaptive_layout(small_forest)
        result = SharedDataStrategy().run(layout, test_X, p100)
        report = format_strategy_report(result)
        assert "strategy: shared_data" in report
        assert "simulated time" in report
        assert "traversal" in report
        assert "forest (global)" in report
        assert "efficiency" in report

    def test_skips_empty_traffic_classes(self, small_forest, test_X, p100):
        layout = build_adaptive_layout(small_forest)
        result = DirectStrategy().run(layout, test_X, p100)
        report = format_strategy_report(result)
        # Direct uses no shared memory at all.
        assert "shared reads" not in report
        assert "samples (global)" in report

    def test_bound_label(self, small_forest, test_X, p100):
        layout = build_adaptive_layout(small_forest)
        result = SharedDataStrategy().run(layout, test_X, p100)
        report = format_strategy_report(result)
        assert ("latency-bound" in report) or ("bandwidth-bound" in report)

    def test_human_byte_units(self, small_forest, test_X, p100):
        layout = build_adaptive_layout(small_forest)
        result = SharedDataStrategy().run(layout, test_X, p100)
        report = format_strategy_report(result)
        assert "KiB" in report or "MiB" in report or " B " in report
