"""Tests for the random-forest and GBDT trainers."""

import numpy as np
import pytest

from repro.datasets import make_classification, make_regression, train_test_split
from repro.trees import GBDTTrainer, RandomForestTrainer


@pytest.fixture(scope="module")
def clf_split():
    return train_test_split(make_classification(1200, 12, seed=21), seed=21)


@pytest.fixture(scope="module")
def reg_split():
    return train_test_split(make_regression(1200, 12, seed=22), seed=22)


class TestRandomForest:
    def test_beats_chance(self, clf_split):
        forest = RandomForestTrainer(n_trees=30, max_depth=6, seed=0).fit(clf_split.train)
        acc = (forest.predict_class(clf_split.test.X) == clf_split.test.y).mean()
        assert acc > 0.7

    def test_more_trees_not_worse(self, clf_split):
        small = RandomForestTrainer(n_trees=3, max_depth=5, seed=0).fit(clf_split.train)
        big = RandomForestTrainer(n_trees=40, max_depth=5, seed=0).fit(clf_split.train)
        acc_small = (small.predict_class(clf_split.test.X) == clf_split.test.y).mean()
        acc_big = (big.predict_class(clf_split.test.X) == clf_split.test.y).mean()
        assert acc_big >= acc_small - 0.02

    def test_aggregation_is_mean(self, clf_split):
        forest = RandomForestTrainer(n_trees=5, max_depth=3, seed=1).fit(clf_split.train)
        assert forest.aggregation == "mean"

    def test_depth_jitter_produces_variance(self, clf_split):
        forest = RandomForestTrainer(
            n_trees=40, max_depth=8, depth_jitter=0.6, seed=2
        ).fit(clf_split.train)
        depths = forest.tree_depths()
        assert depths.std() > 0.5
        assert depths.max() <= 8

    def test_no_jitter_uniform_depth_cap(self, clf_split):
        forest = RandomForestTrainer(n_trees=10, max_depth=4, seed=3).fit(clf_split.train)
        assert forest.tree_depths().max() <= 4

    def test_rejects_bad_params(self, clf_split):
        with pytest.raises(ValueError):
            RandomForestTrainer(n_trees=0).fit(clf_split.train)
        with pytest.raises(ValueError):
            RandomForestTrainer(depth_jitter=1.5).fit(clf_split.train)

    def test_deterministic_per_seed(self, clf_split):
        a = RandomForestTrainer(n_trees=5, max_depth=4, seed=9).fit(clf_split.train)
        b = RandomForestTrainer(n_trees=5, max_depth=4, seed=9).fit(clf_split.train)
        X = clf_split.test.X[:50]
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_regression_mode(self, reg_split):
        forest = RandomForestTrainer(n_trees=25, max_depth=6, seed=4).fit(reg_split.train)
        pred = forest.predict(reg_split.test.X)
        base_mse = ((reg_split.test.y - reg_split.train.y.mean()) ** 2).mean()
        mse = ((pred - reg_split.test.y) ** 2).mean()
        assert mse < base_mse


class TestGBDT:
    def test_beats_chance(self, clf_split):
        forest = GBDTTrainer(n_trees=40, max_depth=4, seed=0).fit(clf_split.train)
        pred = (forest.predict(clf_split.test.X) > 0.5).astype(np.float32)
        assert (pred == clf_split.test.y).mean() > 0.7

    def test_predictions_are_probabilities(self, clf_split):
        forest = GBDTTrainer(n_trees=10, max_depth=3, seed=1).fit(clf_split.train)
        proba = forest.predict(clf_split.test.X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_aggregation_is_sum(self, clf_split):
        forest = GBDTTrainer(n_trees=5, max_depth=3, seed=1).fit(clf_split.train)
        assert forest.aggregation == "sum"
        assert forest.learning_rate == pytest.approx(0.2)

    def test_base_score_is_prior_logit(self, clf_split):
        forest = GBDTTrainer(n_trees=3, max_depth=2, seed=1).fit(clf_split.train)
        p = np.clip(clf_split.train.y.astype(np.float64).mean(), 1e-6, 1 - 1e-6)
        assert forest.base_score == pytest.approx(np.log(p / (1 - p)), rel=1e-4)

    def test_boosting_improves_train_fit(self, clf_split):
        X, y = clf_split.train.X, clf_split.train.y
        few = GBDTTrainer(n_trees=2, max_depth=3, seed=2).fit(clf_split.train)
        many = GBDTTrainer(n_trees=40, max_depth=3, seed=2).fit(clf_split.train)
        loss_few = -np.mean(y * np.log(few.predict(X) + 1e-9) + (1 - y) * np.log(1 - few.predict(X) + 1e-9))
        loss_many = -np.mean(y * np.log(many.predict(X) + 1e-9) + (1 - y) * np.log(1 - many.predict(X) + 1e-9))
        assert loss_many < loss_few

    def test_regression_mode(self, reg_split):
        forest = GBDTTrainer(n_trees=40, max_depth=4, seed=3).fit(reg_split.train)
        pred = forest.predict(reg_split.test.X)
        base_mse = ((reg_split.test.y - reg_split.train.y.mean()) ** 2).mean()
        assert ((pred - reg_split.test.y) ** 2).mean() < base_mse

    def test_subsample_validated(self, clf_split):
        with pytest.raises(ValueError):
            GBDTTrainer(subsample=0.0).fit(clf_split.train)
        with pytest.raises(ValueError):
            GBDTTrainer(subsample=1.5).fit(clf_split.train)

    def test_depth_jitter_produces_variance(self, clf_split):
        forest = GBDTTrainer(n_trees=40, max_depth=8, depth_jitter=0.6, seed=5).fit(
            clf_split.train
        )
        assert forest.tree_depths().std() > 0.5


class TestContinueFit:
    def test_adds_rounds(self, clf_split):
        trainer = GBDTTrainer(n_trees=10, max_depth=3, seed=2)
        base = trainer.fit(clf_split.train)
        grown = trainer.continue_fit(base, clf_split.train, n_more=5)
        assert grown.n_trees == 15
        # Prefix trees are the originals.
        for a, b in zip(grown.trees[:10], base.trees):
            np.testing.assert_array_equal(a.feature, b.feature)

    def test_improves_train_loss(self, clf_split):
        X, y = clf_split.train.X, clf_split.train.y
        trainer = GBDTTrainer(n_trees=5, max_depth=3, seed=2)
        base = trainer.fit(clf_split.train)
        grown = trainer.continue_fit(base, clf_split.train, n_more=20)

        def loss(forest):
            p = np.clip(forest.predict(X), 1e-9, 1 - 1e-9)
            return -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))

        assert loss(grown) < loss(base)

    def test_base_score_preserved(self, clf_split):
        trainer = GBDTTrainer(n_trees=4, max_depth=3, seed=2)
        base = trainer.fit(clf_split.train)
        grown = trainer.continue_fit(base, clf_split.train, n_more=2)
        assert grown.base_score == base.base_score

    def test_rejects_mean_aggregation(self, clf_split):
        from repro.trees import RandomForestTrainer

        rf = RandomForestTrainer(n_trees=4, max_depth=3, seed=1).fit(clf_split.train)
        with pytest.raises(ValueError, match="sum-aggregated"):
            GBDTTrainer(seed=2).continue_fit(rf, clf_split.train, n_more=2)

    def test_rejects_mismatched_learning_rate(self, clf_split):
        base = GBDTTrainer(n_trees=3, learning_rate=0.2, seed=2).fit(clf_split.train)
        with pytest.raises(ValueError, match="learning_rate"):
            GBDTTrainer(learning_rate=0.5, seed=2).continue_fit(
                base, clf_split.train, n_more=2
            )

    def test_rejects_bad_round_count(self, clf_split):
        base = GBDTTrainer(n_trees=3, seed=2).fit(clf_split.train)
        with pytest.raises(ValueError, match="n_more"):
            GBDTTrainer(seed=2).continue_fit(base, clf_split.train, n_more=0)

    def test_original_forest_untouched(self, clf_split, test_X=None):
        trainer = GBDTTrainer(n_trees=4, max_depth=3, seed=2)
        base = trainer.fit(clf_split.train)
        before = base.predict(clf_split.test.X[:40])
        trainer.continue_fit(base, clf_split.train, n_more=3)
        np.testing.assert_array_equal(base.predict(clf_split.test.X[:40]), before)
