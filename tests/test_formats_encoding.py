"""Packed node encodings: bit-exact round trips and differential identity.

Three layers of guarantees, from words up to engines:

* pack/unpack round trips are bit-exact for every word width, including
  the fid boundary values at each capacity edge (hypothesis-driven),
* quantised threshold codecs obey the routing contract — decoded
  thresholds never fall below the original (``t' >= t`` for ceil
  rounding), decode∘encode∘decode is a fixed point, and NaN samples
  still follow the default path,
* engines are differential: every lossless packed width produces
  predictions ``array_equal`` to the unpacked baseline on both layouts
  (adaptive and reorg) and all three engines, including categorical and
  multiclass forests, and the cache keys keep the variants apart.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LayoutCache, TahoeConfig, TahoeEngine
from repro.core.fil import FILEngine, fil_conversion_key
from repro.core.native import NativeEngine
from repro.formats import (
    build_adaptive_layout,
    build_reorg_layout,
    make_encoding,
    pack_node_words,
    unpack_node_words,
)
from repro.formats.encoding import (
    THRESHOLD_MODES,
    WIDTH_BITS,
    NodeEncoding,
    apply_encoding,
    decode_field,
    encode_field,
    make_grid,
    max_attribute_index,
    resolve_width_bits,
)
from repro.gpusim.specs import GPU_SPECS
from repro.trees.forest import Forest
from repro.trees.tree import LEAF, DecisionTree

# ----------------------------------------------------------------------
# Word packing
# ----------------------------------------------------------------------


def _tree_with_fids(fids: list[int], n_attributes: int) -> DecisionTree:
    """A left-spine tree whose decision nodes test the given fids."""
    n = len(fids)
    feature = np.array(fids + [LEAF] * (n + 1), dtype=np.int32)
    left = np.full(2 * n + 1, LEAF, dtype=np.int32)
    right = np.full(2 * n + 1, LEAF, dtype=np.int32)
    for i in range(n):
        left[i] = i + 1 if i + 1 < n else n
        right[i] = n + 1 + i
    threshold = np.zeros(2 * n + 1, dtype=np.float32)
    threshold[:n] = np.linspace(-1.0, 1.0, n, dtype=np.float32)
    value = np.arange(2 * n + 1, dtype=np.float32)
    default_left = np.arange(2 * n + 1) % 2 == 0
    visit = np.linspace(2 * n + 2, 2, 2 * n + 1).astype(np.int64)
    flip = np.arange(2 * n + 1) % 3 == 0
    return DecisionTree(
        feature=feature, threshold=threshold, left=left, right=right,
        value=value, default_left=default_left, visit_count=visit, flip=flip,
    )


@given(
    bits=st.sampled_from(WIDTH_BITS),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_round_trip_every_width(bits, data):
    enc = NodeEncoding(bits, "f32")
    cap = enc.fid_capacity
    # Always include both capacity edges alongside random fids.
    fids = [0, cap - 1] + data.draw(
        st.lists(st.integers(0, cap - 1), min_size=1, max_size=12)
    )
    tree = _tree_with_fids(fids, cap)
    words = pack_node_words(tree, enc)
    assert words.dtype == enc.word_dtype
    fields = unpack_node_words(words, enc)
    np.testing.assert_array_equal(fields["feature"], tree.feature)
    np.testing.assert_array_equal(fields["default_left"], tree.default_left)
    np.testing.assert_array_equal(fields["is_leaf"], tree.is_leaf)
    np.testing.assert_array_equal(fields["flip"], tree.flip)


@pytest.mark.parametrize(
    "bits,boundary", [(8, 32), (16, 8192), (32, 2**29)]
)
def test_fid_capacity_boundaries(bits, boundary):
    enc = NodeEncoding(bits, "f32")
    assert enc.fid_capacity == boundary
    ok = _tree_with_fids([boundary - 1], boundary)
    fields = unpack_node_words(pack_node_words(ok, enc), enc)
    assert fields["feature"][0] == boundary - 1
    if bits < 32:
        too_wide = _tree_with_fids([boundary], boundary + 1)
        with pytest.raises(ValueError, match="does not fit"):
            pack_node_words(too_wide, enc)


def test_resolve_width_bits_auto_picks_narrowest(small_forest):
    max_fid = max_attribute_index(small_forest)
    bits = resolve_width_bits(small_forest, "auto")
    assert max_fid < (1 << (bits - 3))
    if bits > 8:
        assert max_fid >= (1 << (bits - 3 - 8))
    # Explicit widths below capacity are rejected.
    wide = _tree_with_fids([8192], 8193)
    forest = Forest(trees=[wide], n_attributes=8193, task="regression",
                    aggregation="mean")
    with pytest.raises(ValueError, match="does not fit"):
        resolve_width_bits(forest, 16)


# ----------------------------------------------------------------------
# Threshold codecs
# ----------------------------------------------------------------------


@given(
    mode=st.sampled_from(["f16", "q8", "q16"]),
    values=st.lists(
        st.floats(-1e4, 1e4, allow_nan=False, width=32), min_size=2, max_size=50
    ),
)
@settings(max_examples=80, deadline=None)
def test_ceil_rounding_never_undershoots(mode, values):
    v = np.array(values, dtype=np.float32)
    grid = make_grid(v, mode)
    codes = encode_field(v, mode, grid, rounding="ceil")
    decoded = decode_field(codes, mode, grid)
    assert np.all(decoded >= v), f"{mode}: decoded below original"
    # Value-level fixed point: re-encoding the decoded image is stable.
    codes2 = encode_field(decoded, mode, grid, rounding="ceil")
    np.testing.assert_array_equal(
        decode_field(codes2, mode, grid), decoded
    )


@given(
    mode=st.sampled_from(["f16", "q8", "q16"]),
    values=st.lists(
        st.floats(-1e4, 1e4, allow_nan=False, width=32), min_size=2, max_size=50
    ),
)
@settings(max_examples=60, deadline=None)
def test_nearest_rounding_fixed_point(mode, values):
    v = np.array(values, dtype=np.float32)
    grid = make_grid(v, mode)
    decoded = decode_field(encode_field(v, mode, grid, rounding="nearest"), mode, grid)
    again = decode_field(
        encode_field(decoded, mode, grid, rounding="nearest"), mode, grid
    )
    np.testing.assert_array_equal(again, decoded)


def test_f32_mode_is_identity(small_forest):
    enc = make_encoding(small_forest, "auto", "f32")
    forest, meta = apply_encoding(small_forest, enc)
    assert meta["lossless"]
    for before, after in zip(small_forest.trees, forest.trees):
        np.testing.assert_array_equal(before.threshold, after.threshold)
        np.testing.assert_array_equal(before.value, after.value)


# ----------------------------------------------------------------------
# NaN routing, categorical, multiclass
# ----------------------------------------------------------------------


def _nan_forest() -> Forest:
    tree = DecisionTree(
        feature=np.array([0, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.5, 0, 0], dtype=np.float32),
        left=np.array([1, LEAF, LEAF], dtype=np.int32),
        right=np.array([2, LEAF, LEAF], dtype=np.int32),
        value=np.array([0, -7.0, 9.0], dtype=np.float32),
        default_left=np.array([False, True, True]),
        visit_count=np.array([10, 5, 5], dtype=np.int64),
    )
    return Forest(trees=[tree], n_attributes=1, task="regression",
                  aggregation="mean")


@pytest.mark.parametrize("bits", WIDTH_BITS)
def test_nan_default_routing_survives_packing(bits):
    forest = _nan_forest()
    X = np.array([[0.0], [1.0], [np.nan]], dtype=np.float32)
    expected = forest.predict(X)
    assert expected[2] == 9.0  # default_left=False routes NaN right
    spec = GPU_SPECS["P100"]
    config = TahoeConfig(node_width=bits)
    for engine in (TahoeEngine(forest, spec, config=config),
                   NativeEngine(forest, spec, config=config)):
        np.testing.assert_array_equal(engine.predict(X).predictions, expected)


def _categorical_forest() -> Forest:
    # Node 0 tests membership of int(x[0]) in {1, 3}; member -> left.
    tree = DecisionTree(
        feature=np.array([0, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.0, 0, 0], dtype=np.float32),
        left=np.array([1, LEAF, LEAF], dtype=np.int32),
        right=np.array([2, LEAF, LEAF], dtype=np.int32),
        value=np.array([0, 1.0, 2.0], dtype=np.float32),
        default_left=np.array([True, True, True]),
        visit_count=np.array([10, 6, 4], dtype=np.int64),
        cat_offset=np.array([0, -1, -1], dtype=np.int64),
        cat_count=np.array([1, 0, 0], dtype=np.int32),
        cat_bits=np.array([0b1010], dtype=np.uint32),
    )
    return Forest(trees=[tree], n_attributes=1, task="regression",
                  aggregation="mean")


@pytest.mark.parametrize("bits", WIDTH_BITS)
@pytest.mark.parametrize("mode", ["f32", "q8"])
def test_categorical_bitset_nodes_pack(bits, mode):
    forest = _categorical_forest()
    X = np.array([[1.0], [2.0], [3.0], [7.0], [np.nan]], dtype=np.float32)
    expected = forest.predict(X)
    enc = NodeEncoding(bits, mode)
    packed, meta = apply_encoding(forest, enc)
    # Categorical split thresholds are bitset-routed, never quantised.
    np.testing.assert_array_equal(packed.predict(X)[:4], expected[:4])
    engine = TahoeEngine(forest, GPU_SPECS["P100"],
                         config=TahoeConfig(node_width=bits, threshold_mode=mode))
    got = engine.predict(X).predictions
    np.testing.assert_array_equal(got[:4], expected[:4])


def test_multiclass_groups_survive_packing():
    rng = np.random.default_rng(4)
    trees = []
    for i in range(6):
        tree = _tree_with_fids(list(rng.integers(0, 8, size=3)), 8)
        tree.group = i % 3
        trees.append(tree)
    forest = Forest(trees=trees, n_attributes=8, task="classification",
                    aggregation="sum", n_classes=3)
    assert forest.n_classes == 3
    X = rng.standard_normal((64, 8)).astype(np.float32)
    spec = GPU_SPECS["P100"]
    expected = TahoeEngine(forest, spec).predict(X).predictions
    for bits in WIDTH_BITS:
        engine = TahoeEngine(forest, spec, config=TahoeConfig(node_width=bits))
        np.testing.assert_array_equal(engine.predict(X).predictions, expected)
        assert engine.layout.forest.trees[0].group == forest.trees[0].group


# ----------------------------------------------------------------------
# Differential: engines x layouts x widths
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine_cls", [TahoeEngine, FILEngine, NativeEngine])
def test_lossless_widths_bit_identical_across_engines(
    engine_cls, small_forest, test_X, p100
):
    forest = small_forest
    baseline = engine_cls(forest, p100).predict(test_X).predictions
    for bits in WIDTH_BITS:
        config = TahoeConfig(node_width=bits, threshold_mode="f32")
        engine = engine_cls(forest, p100, config=config)
        got = engine.predict(test_X).predictions
        assert np.array_equal(got, baseline), f"{engine_cls.__name__} w{bits}"
        assert engine.layout.record.packed
        assert engine.layout.record.encoding_label == f"w{bits}/f32"


def test_both_layouts_packed_predictions_match(small_gbdt, test_X):
    forest = small_gbdt
    expected = forest.predict(test_X)
    enc = make_encoding(forest, "auto", "f32")
    for layout in (
        build_adaptive_layout(forest, node_encoding=enc),
        build_reorg_layout(forest, node_encoding=enc),
    ):
        assert layout.record.packed
        assert layout.metadata["node_encoding"]["lossless"]
        np.testing.assert_array_equal(layout.forest.predict(test_X), expected)


def test_quantised_thresholds_bounded_error(small_forest, test_X, p100):
    forest = small_forest
    baseline = TahoeEngine(forest, p100).predict(test_X).predictions
    engine = TahoeEngine(
        forest, p100, config=TahoeConfig(node_width="auto", threshold_mode="q8")
    )
    got = engine.predict(test_X).predictions
    spread = float(forest.predict(test_X).max() - forest.predict(test_X).min())
    assert np.max(np.abs(got - baseline)) <= max(spread, 1.0)


# ----------------------------------------------------------------------
# Cache keys and conversion stats
# ----------------------------------------------------------------------


def test_conversion_keys_distinguish_encodings():
    legacy = TahoeConfig().conversion_key()
    assert all("node_encoding" not in str(part) for part in legacy)
    keys = {legacy}
    for bits in WIDTH_BITS:
        for mode in THRESHOLD_MODES:
            keys.add(TahoeConfig(node_width=bits, threshold_mode=mode).conversion_key())
            keys.add(fil_conversion_key(TahoeConfig(node_width=bits, threshold_mode=mode)))
    assert len(keys) == 1 + 2 * len(WIDTH_BITS) * len(THRESHOLD_MODES)
    assert fil_conversion_key(TahoeConfig()) == ("reorg",)


def test_layout_cache_separates_packed_variants(small_forest, test_X, p100):
    cache = LayoutCache(capacity=8)
    forest = small_forest
    e1 = TahoeEngine(forest, p100, layout_cache=cache)
    e2 = TahoeEngine(forest, p100, layout_cache=cache,
                     config=TahoeConfig(node_width=8))
    assert e1.layout.record.node_bytes != e2.layout.record.node_bytes
    e3 = TahoeEngine(forest, p100, layout_cache=cache,
                     config=TahoeConfig(node_width=8))
    assert e3.conversion_stats.cache_hit
    np.testing.assert_array_equal(
        e2.predict(test_X).predictions, e3.predict(test_X).predictions
    )


def test_conversion_stats_report_encoding(small_forest, test_X, p100):
    engine = TahoeEngine(small_forest, p100,
                         config=TahoeConfig(node_width=16))
    assert engine.conversion_stats.node_encoding == "w16/f32"
    report = engine.predict(test_X, report=True).report
    assert report.conversions[0].node_encoding == "w16/f32"
    legacy = TahoeEngine(small_forest, p100)
    assert legacy.conversion_stats.node_encoding.startswith("legacy-")


# ----------------------------------------------------------------------
# Artifacts and layout files
# ----------------------------------------------------------------------


def test_artifact_round_trip_packed(small_forest, test_X, p100, tmp_path):
    from repro.modelstore import load_packed, pack_forest

    forest = small_forest
    path = tmp_path / "packed.tahoe"
    config = TahoeConfig(node_width=8, threshold_mode="f32")
    pack_forest(forest, p100, path, config=config)
    model = load_packed(path)
    assert model.node_encoding == "w8/f32"
    assert model.layout.record.packed
    sections = model.section_sizes()
    assert sections.get("words", 0) > 0
    baseline = TahoeEngine(forest, p100, config=config).predict(test_X).predictions
    restored = TahoeEngine(forest, p100).predict(test_X).predictions
    engine = model.make_engine(p100)
    got = engine.predict(test_X).predictions
    np.testing.assert_array_equal(got, baseline)
    np.testing.assert_array_equal(got, restored)

    # Packed artifacts are smaller than the unpacked equivalent.
    wide = tmp_path / "wide.tahoe"
    pack_forest(forest, p100, wide)
    assert path.stat().st_size < wide.stat().st_size


def test_layout_io_round_trip_packed(small_gbdt, tmp_path):
    from repro.formats.io import load_layout, save_layout

    forest = small_gbdt
    enc = make_encoding(forest, 16, "f32")
    layout = build_adaptive_layout(forest, node_encoding=enc)
    path = tmp_path / "layout.npz"
    save_layout(layout, path)
    loaded = load_layout(path)
    assert loaded.record.packed
    assert loaded.record.threshold_mode == "f32"
    assert loaded.record.node_bytes == layout.record.node_bytes
    X = np.random.default_rng(0).standard_normal(
        (32, forest.n_attributes)
    ).astype(np.float32)
    np.testing.assert_array_equal(
        loaded.forest.predict(X), layout.forest.predict(X)
    )


def test_encoding_ranking_orders_by_bytes_moved(small_forest, p100):
    from repro.perfmodel import rank_node_encodings

    layout = build_adaptive_layout(small_forest)
    choices = rank_node_encodings(layout, 256, p100)
    assert len(choices) >= 2
    moved = [c.bytes_moved for c in choices]
    assert moved == sorted(moved)
    names = [c.name for c in choices]
    assert names[0] == "w8/f32"  # letter fits 8-bit fids
    assert {"w16/f32", "w32/f32"} <= set(names)
