"""SLO monitor: rolling windows, transition-only events, overload breaches."""

import pytest

from repro.serving import (
    SchedulerConfig,
    SLOConfig,
    SLOMonitor,
    TahoeServer,
    burst_workload,
    poisson_workload,
)


class TestSLOConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(window=0.0)
        with pytest.raises(ValueError):
            SLOConfig(eval_interval=-1.0)
        with pytest.raises(ValueError):
            SLOConfig(min_requests=0)

    def test_objectives_subset(self):
        cfg = SLOConfig(latency_p95=0.01, error_rate=0.05)
        assert cfg.objectives() == {"latency_p95": 0.01, "error_rate": 0.05}
        assert SLOConfig().objectives() == {}


class TestSLOMonitorUnit:
    def _fill(self, monitor, *, start, n, latency, ok=True, spacing=1e-3):
        for i in range(n):
            monitor.observe(
                now=start + i * spacing, latency=latency, queue_wait=0.0, ok=ok
            )

    def test_breach_and_recovery_are_transition_only(self):
        cfg = SLOConfig(window=1.0, latency_p95=0.005, min_requests=5)
        monitor = SLOMonitor(cfg)
        self._fill(monitor, start=0.0, n=30, latency=0.001)
        monitor.evaluate(0.03)
        assert monitor.events == []

        # Window turns slow: exactly one breach event, even across
        # repeated evaluations while the breach persists.
        self._fill(monitor, start=2.0, n=30, latency=0.02)
        monitor.evaluate(2.03)
        monitor.evaluate(2.04)
        breaches = [e for e in monitor.events if e["event"] == "slo.breach"]
        assert len(breaches) == 1
        (event,) = breaches
        assert event["objective"] == "latency_p95"
        assert event["observed"] > event["threshold"] == 0.005
        assert event["window_requests"] >= 5

        # Fast again (old slow samples age out of the window): recovery.
        self._fill(monitor, start=4.0, n=30, latency=0.001)
        monitor.evaluate(4.03)
        kinds = [e["event"] for e in monitor.events]
        assert kinds == ["slo.breach", "slo.recovered"]

    def test_min_requests_floor_suppresses_sparse_windows(self):
        cfg = SLOConfig(window=1.0, latency_p95=0.001, min_requests=20)
        monitor = SLOMonitor(cfg)
        self._fill(monitor, start=0.0, n=5, latency=1.0)  # wildly slow but sparse
        assert monitor.evaluate(0.01) == []
        assert monitor.events == []

    def test_error_rate_objective_counts_failures(self):
        cfg = SLOConfig(window=1.0, error_rate=0.1, min_requests=5)
        monitor = SLOMonitor(cfg)
        self._fill(monitor, start=0.0, n=8, latency=0.001)
        self._fill(monitor, start=0.01, n=2, latency=0.0, ok=False)
        events = monitor.evaluate(0.02)
        assert events and events[0]["objective"] == "error_rate"
        assert events[0]["observed"] == pytest.approx(0.2)

    def test_window_trims_old_observations(self):
        cfg = SLOConfig(window=0.5, latency_p95=0.01, min_requests=1)
        monitor = SLOMonitor(cfg)
        self._fill(monitor, start=0.0, n=10, latency=1.0)
        stats = monitor.window_stats(10.0)  # everything aged out
        assert stats["requests"] == 0

    def test_summary_shape(self):
        monitor = SLOMonitor(SLOConfig(latency_p95=0.01))
        s = monitor.summary()
        assert s["objectives"] == {"latency_p95": 0.01}
        assert s["breaches"] == 0
        assert s["in_breach"] == []
        assert s["events"] == []


class TestServerIntegration:
    def test_server_accepts_config_monitor_or_none(self, small_forest, p100):
        cfg = SchedulerConfig(n_engines=1)
        assert TahoeServer(small_forest, p100, scheduler=cfg).slo is None
        s = TahoeServer(small_forest, p100, scheduler=cfg, slo=SLOConfig())
        assert isinstance(s.slo, SLOMonitor)
        monitor = SLOMonitor(SLOConfig())
        s = TahoeServer(small_forest, p100, scheduler=cfg, slo=monitor)
        assert s.slo is monitor
        with pytest.raises(TypeError):
            TahoeServer(small_forest, p100, scheduler=cfg, slo=object())

    def test_healthy_run_has_no_breaches(self, small_forest, p100, test_X):
        server = TahoeServer(
            small_forest,
            p100,
            scheduler=SchedulerConfig(n_engines=2),
            slo=SLOConfig(latency_p95=1.0, error_rate=0.5, window=0.05),
        )
        reqs = poisson_workload(test_X, qps=2000, duration=0.1, seed=3)
        result = server.run(reqs)
        slo = result.summary["slo"]
        assert slo["breaches"] == 0 and slo["in_breach"] == []

    def test_overload_emits_structured_breach_events(
        self, small_forest, p100, test_X
    ):
        # One engine, tiny batches, a 50x burst: queueing collapses and
        # both the latency and the error-rate objectives must breach.
        server = TahoeServer(
            small_forest,
            p100,
            scheduler=SchedulerConfig(n_engines=1, max_batch=8, max_wait=2e-3),
            slo=SLOConfig(
                latency_p95=2e-3, error_rate=0.05, window=0.05, min_requests=10
            ),
        )
        reqs = burst_workload(
            test_X,
            qps=1000,
            duration=0.2,
            burst_factor=50,
            seed=5,
            deadline=5e-3,
        )
        result = server.run(reqs, report=True)
        slo = result.summary["slo"]
        assert slo["breaches"] >= 1
        breached = {e["objective"] for e in slo["events"] if e["event"] == "slo.breach"}
        assert "latency_p95" in breached
        for event in slo["events"]:
            assert {"event", "objective", "observed", "threshold", "time"} <= set(event)
        # The same structured events land in the run report.
        assert result.report.meta["slo"]["breaches"] == slo["breaches"]


class TestBurstWorkload:
    def test_burst_raises_rate_inside_window(self, test_X):
        reqs = burst_workload(
            test_X, qps=1000, duration=0.3, burst_factor=20, burst_fraction=0.2, seed=0
        )
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
        assert len({r.request_id for r in reqs}) == len(reqs)
        # The burst window [0.12, 0.18) sees ~20x the baseline density.
        burst = sum(1 for t in times if 0.12 <= t < 0.18)
        pre = sum(1 for t in times if t < 0.12)
        assert burst > 3 * pre

    def test_degenerate_parameters(self, test_X):
        with pytest.raises(ValueError):
            burst_workload(test_X, qps=100, duration=0.1, burst_factor=0.5)
        with pytest.raises(ValueError):
            burst_workload(test_X, qps=100, duration=0.1, burst_fraction=1.0)
        # factor 1 degrades to a plain poisson workload.
        flat = burst_workload(test_X, qps=500, duration=0.1, burst_factor=1.0, seed=2)
        plain = poisson_workload(test_X, qps=500, duration=0.1, seed=2)
        assert [r.arrival_time for r in flat] == [r.arrival_time for r in plain]
