"""Tests for probability-based node rearrangement (paper section 4.1)."""

import numpy as np
import pytest

from repro.formats.node_rearrange import (
    count_swaps,
    rearrange_forest_nodes,
    rearrange_nodes_by_probability,
)


class TestNodeRearrangement:
    def test_hot_child_moves_left(self, manual_tree):
        # Root: left prob 0.2 < right prob 0.8 -> must swap.
        out = rearrange_nodes_by_probability(manual_tree)
        p_left, p_right = out.edge_probabilities()
        decision = ~out.is_leaf
        assert np.all(p_left[decision] >= p_right[decision])

    def test_flip_bit_set_on_swapped_nodes(self, manual_tree):
        out = rearrange_nodes_by_probability(manual_tree)
        assert out.flip[0]  # root was swapped
        # Node 2: left=3 (30) vs right=4 (50) -> swapped too.
        assert out.flip[2]
        # Node 4: left=5 (35) vs right=6 (15) -> kept.
        assert not out.flip[4]

    def test_predictions_preserved(self, manual_tree):
        out = rearrange_nodes_by_probability(manual_tree)
        X = np.random.default_rng(0).standard_normal((200, 2)).astype(np.float32)
        np.testing.assert_allclose(out.predict(X), manual_tree.predict(X))

    def test_missing_value_semantics_preserved(self, manual_tree):
        out = rearrange_nodes_by_probability(manual_tree)
        X = np.array(
            [[np.nan, 0.0], [1.0, np.nan], [np.nan, np.nan]], dtype=np.float32
        )
        np.testing.assert_allclose(out.predict(X), manual_tree.predict(X))

    def test_descendants_move_with_child(self, manual_tree):
        out = rearrange_nodes_by_probability(manual_tree)
        # After swapping the root, node 2's subtree hangs off the left.
        assert out.left[0] == 2

    def test_idempotent(self, manual_tree):
        once = rearrange_nodes_by_probability(manual_tree)
        twice = rearrange_nodes_by_probability(once)
        np.testing.assert_array_equal(once.left, twice.left)
        np.testing.assert_array_equal(once.flip, twice.flip)

    def test_input_not_modified(self, manual_tree):
        before = manual_tree.left.copy()
        rearrange_nodes_by_probability(manual_tree)
        np.testing.assert_array_equal(manual_tree.left, before)

    def test_count_swaps_matches_flips(self, manual_tree):
        out = rearrange_nodes_by_probability(manual_tree)
        assert count_swaps(manual_tree) == int(out.flip.sum())

    def test_forest_rearrangement_preserves_predictions(self, small_forest, test_X):
        out = rearrange_forest_nodes(small_forest)
        np.testing.assert_allclose(
            out.predict(test_X), small_forest.predict(test_X), rtol=1e-6
        )

    def test_forest_rearrangement_all_hot_left(self, small_forest):
        out = rearrange_forest_nodes(small_forest)
        for tree in out.trees:
            p_left, p_right = tree.edge_probabilities()
            decision = ~tree.is_leaf
            assert np.all(p_left[decision] >= p_right[decision] - 1e-12)
