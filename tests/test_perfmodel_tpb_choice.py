"""Tests for the model-guided shared-data block-size choice."""

import pytest

from repro.formats import build_adaptive_layout
from repro.perfmodel import measure_hardware_parameters, workload_params
from repro.perfmodel.models import choose_shared_data_tpb, predict_shared_data


@pytest.fixture(scope="module")
def setup(request):
    forest = request.getfixturevalue("small_forest")
    p100 = request.getfixturevalue("p100")
    layout = build_adaptive_layout(forest)
    hw = measure_hardware_parameters(p100)
    return layout, hw


class TestChooseTpb:
    def test_warp_multiple(self, setup):
        layout, hw = setup
        sample, fp = workload_params(layout, 1000)
        tpb = choose_shared_data_tpb(sample, fp, hw, layout)
        assert tpb % 32 == 0
        assert 32 <= tpb <= 256

    def test_chosen_is_argmin_of_model(self, setup):
        layout, hw = setup
        sample, fp = workload_params(layout, 1000)
        best = choose_shared_data_tpb(sample, fp, hw, layout)
        t_best = predict_shared_data(sample, fp, hw, layout, tpb=best).total
        for tpb in (32, 64, 128, 256):
            t = predict_shared_data(sample, fp, hw, layout, tpb=tpb).total
            assert t_best <= t + 1e-12

    def test_varies_with_batch_size(self, setup):
        """The chain/balance trade-off depends on the batch: the choice
        must be batch-aware (it need not differ, but must be valid at
        both extremes)."""
        layout, hw = setup
        for batch in (50, 100000):
            sample, fp = workload_params(layout, batch)
            tpb = choose_shared_data_tpb(sample, fp, hw, layout)
            assert 32 <= tpb <= 256

    def test_explicit_tpb_respected_by_model(self, setup):
        layout, hw = setup
        sample, fp = workload_params(layout, 1000)
        a = predict_shared_data(sample, fp, hw, layout, tpb=32)
        b = predict_shared_data(sample, fp, hw, layout, tpb=256)
        assert a.total != b.total  # geometry actually feeds the model
