"""The unified serving surface: Server/Workload protocols and the
SchedulerConfig/PolicyConfig split (with the deprecated ServerConfig
shim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    AutoscaleConfig,
    BurstWorkload,
    PoissonWorkload,
    PolicyConfig,
    SLOConfig,
    SchedulerConfig,
    Server,
    ServerConfig,
    TahoeServer,
    UserPopulationWorkload,
    Workload,
    make_workload,
)
from repro.serving.api import materialize_workload
from repro.serving.fleet import TahoeRouter


@pytest.fixture(scope="module")
def sched():
    return SchedulerConfig(max_wait=1e-3, max_batch=64)


class TestServerProtocol:
    def test_tahoe_server_is_a_server(self, small_forest, p100, sched):
        assert isinstance(TahoeServer(small_forest, p100, scheduler=sched), Server)

    def test_router_is_a_server(self, small_forest, p100, sched):
        router = TahoeRouter(small_forest, p100, n_shards=2, scheduler=sched)
        assert isinstance(router, Server)

    def test_a_list_is_not_a_server(self):
        assert not isinstance([], Server)


class TestWorkloadProtocol:
    def test_workload_classes_conform(self, test_X):
        for wl in (
            PoissonWorkload(test_X, qps=100.0, duration=0.1),
            BurstWorkload(test_X, qps=100.0, duration=0.1),
            UserPopulationWorkload(test_X, qps=100.0, duration=0.1, n_users=10),
        ):
            assert isinstance(wl, Workload)

    def test_a_request_list_is_not_a_workload(self):
        assert not isinstance([], Workload)

    def test_registry_lookup(self, test_X):
        kw = dict(qps=1.0, duration=0.1)
        assert isinstance(make_workload("poisson", test_X, **kw), PoissonWorkload)
        assert isinstance(make_workload("burst", test_X, **kw), BurstWorkload)
        assert isinstance(
            make_workload("user-population", test_X, n_users=5, **kw),
            UserPopulationWorkload,
        )

    def test_registry_rejects_unknown_traffic(self, test_X):
        with pytest.raises(ValueError, match="poisson"):
            make_workload("pareto", test_X, qps=1.0, duration=0.1)

    def test_registry_filters_foreign_kwargs(self, test_X):
        # burst_factor is a BurstWorkload knob; the registry drops it for
        # poisson instead of exploding, so one CLI surface serves all.
        wl = make_workload(
            "poisson", test_X, qps=1.0, duration=0.1, burst_factor=50.0
        )
        assert isinstance(wl, PoissonWorkload)

    def test_materialize_none_and_lists(self):
        assert materialize_workload(None, None) == []
        assert materialize_workload([1, 2], None) == [1, 2]

    def test_materialize_needs_a_horizon(self, test_X):
        class NoDuration:
            def arrivals(self, rng, horizon):
                return []

        with pytest.raises(ValueError, match="until"):
            materialize_workload(NoDuration(), None)
        assert materialize_workload(NoDuration(), 0.5) == []


class TestConfigSplit:
    def test_server_config_warns_once_per_construction(self):
        with pytest.warns(DeprecationWarning, match="SchedulerConfig"):
            cfg = ServerConfig(max_batch=32)
        assert isinstance(cfg, SchedulerConfig)
        assert cfg.max_batch == 32

    def test_scheduler_config_does_not_warn(self, recwarn):
        SchedulerConfig(max_batch=32)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_server_rejects_both_config_spellings(self, small_forest, p100):
        with pytest.warns(DeprecationWarning):
            old = ServerConfig()
        with pytest.raises(TypeError, match="not both"):
            TahoeServer(
                small_forest, p100, scheduler=SchedulerConfig(), server_config=old
            )

    def test_slo_moves_into_policy(self, small_forest, p100):
        slo = SLOConfig(latency_p95=1e-3)
        server = TahoeServer(small_forest, p100, policy=PolicyConfig(slo=slo))
        assert server.slo is not None
        with pytest.raises(TypeError, match="slo"):
            TahoeServer(small_forest, p100, policy=PolicyConfig(slo=slo), slo=slo)

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(n_engines=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_queue=0)

    def test_autoscale_needs_an_objective(self):
        with pytest.raises(ValueError, match="objective"):
            AutoscaleConfig()

    def test_autoscale_hysteresis_defaults(self):
        cfg = AutoscaleConfig(scale_up_latency_p95=4e-3, scale_up_queue_depth=100)
        assert cfg.down_latency == pytest.approx(1e-3)
        assert cfg.down_queue_depth == pytest.approx(25.0)


class TestIncrementalRun:
    def test_stepped_run_matches_one_shot(self, small_forest, p100, test_X, sched):
        wl = PoissonWorkload(test_X, qps=2000.0, duration=0.05, seed=3)
        stepped = TahoeServer(small_forest, p100, scheduler=sched)
        first = stepped.run(wl, until=0.02)
        rest = stepped.run()
        one_shot = TahoeServer(small_forest, p100, scheduler=sched).run(wl)
        got = {r.request_id: r for r in first.responses + rest.responses}
        want = {r.request_id: r for r in one_shot.responses}
        assert set(got) == set(want)
        assert all(
            np.array_equal(got[k].predictions, want[k].predictions) for k in want
        )

    def test_submit_then_drain(self, small_forest, p100, test_X, sched):
        from repro.serving import InferenceRequest

        server = TahoeServer(small_forest, p100, scheduler=sched)
        rejected = server.submit(
            InferenceRequest(request_id=0, X=test_X[0], arrival_time=0.0)
        )
        assert rejected is None  # queued, not rejected
        result = server.run()
        assert len(result.responses) == 1 and result.responses[0].ok

    def test_summary_and_metrics_surfaces(self, small_forest, p100, test_X, sched):
        wl = PoissonWorkload(test_X, qps=500.0, duration=0.02, seed=1)
        server = TahoeServer(small_forest, p100, scheduler=sched)
        server.run(wl)
        summary = server.summary()
        assert summary["completed"] == summary["requests"] > 0
        assert server.metrics().counter("serving.requests_total").value > 0
