"""Micro-scale end-to-end runs over the whole Table 2 registry.

Every dataset gets a tiny forest trained and pushed through both engines;
predictions must match the reference predictor exactly.  This is the
guard that keeps all 15 configurations (GBDT/RF, wide/narrow, deep/
shallow) working as the library evolves.
"""

import numpy as np
import pytest

from repro.core import FILEngine, TahoeEngine
from repro.datasets import DATASET_ORDER
from repro.trees import train_forest_for_spec


@pytest.mark.parametrize("name", DATASET_ORDER)
def test_registry_dataset_end_to_end(name, p100):
    workload = train_forest_for_spec(
        name, scale=0.002, tree_scale=0.01, max_trees=6, seed=2
    )
    forest = workload.forest
    X = workload.split.test.X[:50]
    reference = forest.predict(X)
    tahoe = TahoeEngine(forest, p100).predict(X)
    fil = FILEngine(forest, p100).predict(X)
    np.testing.assert_allclose(tahoe.predictions, reference, rtol=1e-4, atol=1e-6)
    np.testing.assert_allclose(fil.predictions, reference, rtol=1e-4, atol=1e-6)
    assert tahoe.total_time > 0 and fil.total_time > 0


@pytest.mark.parametrize("name", ["Higgs", "SVHN", "allstate"])
def test_registry_dataset_batched(name, p100):
    workload = train_forest_for_spec(
        name, scale=0.002, tree_scale=0.01, max_trees=6, seed=2
    )
    X = workload.split.test.X[:90]
    engine = TahoeEngine(workload.forest, p100)
    whole = engine.predict(X)
    batched = engine.predict(X, batch_size=25)
    np.testing.assert_allclose(batched.predictions, whole.predictions, rtol=1e-6)
