"""Fleet router invariants: single-shard service, grouped reduction
bit-identity, shard_overloaded admission, and autoscaler hysteresis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    REJECTED_SHARD_OVERLOADED,
    AdmissionConfig,
    AutoscaleConfig,
    BurstWorkload,
    InferenceRequest,
    PoissonWorkload,
    PolicyConfig,
    SchedulerConfig,
    TahoeServer,
)
from repro.serving.fleet import TahoeRouter, plan_forest_shards
from repro.serving.fleet.autoscaler import SCALE_DOWN, SCALE_UP, ReplicaAutoscaler


@pytest.fixture(scope="module")
def sched():
    return SchedulerConfig(max_wait=1e-3, max_batch=64)


def _assert_spans_tile(response):
    """A fleet trace must tile [arrival, completion]: no gaps, no overlap."""
    spans = response.trace.spans
    assert spans[0].start == response.arrival_time
    assert spans[-1].end == response.completion_time
    for prev, cur in zip(spans, spans[1:]):
        assert cur.start == prev.end


class TestReplicateMode:
    def test_each_request_served_by_exactly_one_shard(
        self, small_forest, p100, test_X, sched
    ):
        router = TahoeRouter(small_forest, p100, n_shards=3, scheduler=sched)
        wl = PoissonWorkload(test_X, qps=3000.0, duration=0.05, seed=5)
        result = router.run(wl)
        assert all(r.ok for r in result.responses)
        summary = result.summary
        routed = sum(s["routed_requests"] for s in summary["shards"])
        assert routed == summary["completed"] == len(result.responses)
        # least-outstanding dispatch spreads work across the fleet
        assert all(s["routed_requests"] > 0 for s in summary["shards"])

    def test_replicated_predictions_match_single_server(
        self, small_forest, p100, test_X, sched
    ):
        wl = PoissonWorkload(test_X, qps=2000.0, duration=0.04, seed=2)
        fleet = TahoeRouter(small_forest, p100, n_shards=3, scheduler=sched).run(wl)
        single = TahoeServer(small_forest, p100, scheduler=sched).run(wl)
        ref = {r.request_id: r.predictions for r in single.responses}
        assert len(fleet.responses) == len(ref)
        for r in fleet.responses:
            assert np.array_equal(r.predictions, ref[r.request_id])

    def test_trace_spans_tile_arrival_to_completion(
        self, small_forest, p100, test_X, sched
    ):
        router = TahoeRouter(small_forest, p100, n_shards=2, scheduler=sched)
        wl = PoissonWorkload(test_X, qps=1000.0, duration=0.03, seed=4)
        result = router.run(wl)
        for r in result.responses:
            _assert_spans_tile(r)
            assert r.trace.spans[0].stage == "router"

    def test_replicas_share_one_layout(self, small_forest, p100, sched):
        from repro.core import LayoutCache

        cache = LayoutCache()
        TahoeRouter(
            small_forest, p100, n_shards=3, scheduler=sched, layout_cache=cache
        )
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] >= 2


class TestForestMode:
    @pytest.mark.parametrize("fixture", ["small_forest", "small_gbdt"])
    def test_grouped_reduction_is_bit_identical(
        self, fixture, p100, test_X, sched, request
    ):
        forest = request.getfixturevalue(fixture)
        wl = PoissonWorkload(test_X, qps=2000.0, duration=0.03, seed=9)
        single = TahoeServer(forest, p100, scheduler=sched).run(wl)
        fleet = TahoeRouter(
            forest, p100, n_shards=3, mode="forest", scheduler=sched
        ).run(wl)
        ref = {r.request_id: r.predictions for r in single.responses}
        assert len(fleet.responses) == len(ref) > 0
        for r in fleet.responses:
            assert r.ok
            assert np.array_equal(r.predictions, ref[r.request_id])
        assert fleet.summary["grouped_reductions"] == len(ref)

    def test_forest_mode_traces_record_fanout_and_reduction(
        self, small_forest, p100, test_X, sched
    ):
        router = TahoeRouter(
            small_forest, p100, n_shards=3, mode="forest", scheduler=sched
        )
        result = router.run(
            [InferenceRequest(request_id=0, X=test_X[0], arrival_time=0.0)]
        )
        (response,) = result.responses
        _assert_spans_tile(response)
        stages = [s.stage for s in response.trace.spans]
        assert stages[0] == "router"
        assert stages[-1] == "grouped_reduction"
        assert response.trace.spans[0].args["fanout"] == 3

    def test_shard_plan_partitions_the_forest(self, small_forest):
        shards = plan_forest_shards(small_forest, 3)
        assert sum(len(s.trees) for s in shards) == len(small_forest.trees)
        for sub in shards:
            assert sub.aggregation == "sum" and sub.base_score == 0.0


class TestAdmissionControl:
    def test_overload_rejects_with_structured_code(
        self, small_forest, p100, test_X, sched
    ):
        policy = PolicyConfig(admission=AdmissionConfig(max_outstanding_samples=8))
        router = TahoeRouter(
            small_forest, p100, n_shards=2, scheduler=sched, policy=policy
        )
        wl = PoissonWorkload(test_X, qps=50_000.0, duration=0.01, seed=6)
        result = router.run(wl)
        rejected = [r for r in result.responses if not r.ok]
        assert rejected
        for r in rejected:
            assert r.error.code == REJECTED_SHARD_OVERLOADED
            _assert_spans_tile(r)
            assert r.trace.spans[0].args["rejected"] == REJECTED_SHARD_OVERLOADED
        served = [r for r in result.responses if r.ok]
        assert served, "admission control must shed load, not blackhole it"

    def test_unknown_model_is_rejected(self, small_forest, small_gbdt, p100, test_X):
        router = TahoeRouter(
            spec=p100,
            mode="models",
            models={"rf": small_forest, "gb": small_gbdt},
            scheduler=SchedulerConfig(max_wait=1e-3),
        )
        result = router.run(
            [
                InferenceRequest(request_id=0, X=test_X[0], arrival_time=0.0, model="rf"),
                InferenceRequest(request_id=1, X=test_X[1], arrival_time=0.0, model="nope"),
            ]
        )
        by_id = {r.request_id: r for r in result.responses}
        assert by_id[0].ok
        assert not by_id[1].ok
        assert by_id[1].error.code == REJECTED_SHARD_OVERLOADED

    def test_per_model_routing(self, small_forest, small_gbdt, p100, test_X):
        router = TahoeRouter(
            spec=p100,
            mode="models",
            models={"rf": small_forest, "gb": small_gbdt},
            scheduler=SchedulerConfig(max_wait=1e-3),
        )
        requests = [
            InferenceRequest(
                request_id=i,
                X=test_X[i],
                arrival_time=i * 1e-4,
                model="gb" if i % 3 == 0 else "rf",
            )
            for i in range(30)
        ]
        result = router.run(requests)
        versions = {r.request_id: r.model_version for r in result.responses}
        for i in range(30):
            assert versions[i].startswith("gb@" if i % 3 == 0 else "rf@")


class TestAutoscaler:
    @pytest.fixture(scope="class")
    def autoscale_policy(self):
        return PolicyConfig(
            autoscale=AutoscaleConfig(
                min_shards=1,
                max_shards=4,
                scale_up_latency_p95=2e-3,
                scale_down_latency_p95=9e-4,
                scale_up_queue_depth=200,
                scale_down_queue_depth=40,
                window=5e-3,
                cooldown=6e-3,
                min_requests=10,
            )
        )

    def test_burst_scales_up_then_drains(
        self, small_forest, p100, test_X, autoscale_policy
    ):
        sched = SchedulerConfig(max_wait=5e-4, max_batch=64, max_queue=100_000)
        router = TahoeRouter(
            small_forest, p100, n_shards=1, scheduler=sched, policy=autoscale_policy
        )
        wl = BurstWorkload(
            test_X, qps=4000.0, duration=0.12, burst_factor=80.0,
            burst_fraction=0.25, seed=7,
        )
        result = router.run(wl)
        summary = result.summary
        events = summary["autoscale"]["events"]
        ups = [e for e in events if e["event"] == "autoscale.scale_up"]
        downs = [e for e in events if e["event"] == "autoscale.scale_down"]
        assert len(ups) >= 1, "burst must add at least one replica"
        assert len(downs) >= 1, "fleet must drain after the burst"
        assert summary["n_shards"] < summary["n_shards_ever"]
        # transition-only events: every record changes the replica count
        for e in events:
            assert e["replicas_after"] != e["replicas_before"]
        # scale-up reuses the pinned layout: no conversion on the hot path
        for e in ups:
            assert e["conversion_cache_hit"] is True
        assert all(r.ok for r in result.responses)

    def test_steady_load_does_not_flap(
        self, small_forest, p100, test_X, autoscale_policy
    ):
        sched = SchedulerConfig(max_wait=5e-4, max_batch=64, max_queue=100_000)
        router = TahoeRouter(
            small_forest, p100, n_shards=1, scheduler=sched, policy=autoscale_policy
        )
        wl = PoissonWorkload(test_X, qps=4000.0, duration=0.12, seed=7)
        summary = router.run(wl).summary
        assert summary["autoscale"]["events"] == []
        assert summary["n_shards"] == summary["n_shards_ever"] == 1

    def test_unit_hysteresis_band_takes_no_action(self):
        cfg = AutoscaleConfig(
            scale_up_latency_p95=2e-3,
            scale_down_latency_p95=5e-4,
            window=1e-2,
            cooldown=0.0,
            min_requests=5,
        )
        scaler = ReplicaAutoscaler(cfg)
        # p95 between the thresholds: inside the hysteresis band
        for i in range(20):
            scaler.observe(i * 1e-4, 1e-3)
        assert scaler.evaluate(2.1e-3, n_active=2, mean_queue_depth=0.0) is None

    def test_unit_thresholds_and_cooldown(self):
        cfg = AutoscaleConfig(
            scale_up_latency_p95=2e-3, window=1e-2, cooldown=1.0, min_requests=5
        )
        scaler = ReplicaAutoscaler(cfg)
        for i in range(20):
            scaler.observe(i * 1e-4, 5e-3)
        assert scaler.evaluate(2.5e-3, n_active=1, mean_queue_depth=0.0) == SCALE_UP
        scaler.record_action(SCALE_UP, 2.5e-3, n_before=1, n_after=2)
        # same signal immediately after: blocked by cooldown
        assert scaler.evaluate(5e-3, n_active=2, mean_queue_depth=0.0) is None

    def test_unit_scale_down_needs_all_clear(self):
        cfg = AutoscaleConfig(
            scale_up_latency_p95=2e-3,
            scale_up_queue_depth=100,
            window=1e-2,
            cooldown=0.0,
            min_requests=5,
        )
        scaler = ReplicaAutoscaler(cfg)
        for i in range(20):
            scaler.observe(i * 1e-4, 1e-4)  # latency well below down threshold
        # queue still busy: no scale-down
        assert scaler.evaluate(2.1e-3, n_active=2, mean_queue_depth=80.0) is None
        scaler2 = ReplicaAutoscaler(cfg)
        for i in range(20):
            scaler2.observe(i * 1e-4, 1e-4)
        assert (
            scaler2.evaluate(2.1e-3, n_active=2, mean_queue_depth=1.0) == SCALE_DOWN
        )
        # but never below min_shards
        scaler3 = ReplicaAutoscaler(cfg)
        for i in range(20):
            scaler3.observe(i * 1e-4, 1e-4)
        assert scaler3.evaluate(2.1e-3, n_active=1, mean_queue_depth=1.0) is None


class TestFleetReport:
    def test_merged_report_counts_each_decision_once(
        self, small_forest, p100, test_X, sched
    ):
        router = TahoeRouter(small_forest, p100, n_shards=2, scheduler=sched)
        wl = PoissonWorkload(test_X, qps=2000.0, duration=0.04, seed=8)
        result = router.run(wl, report=True)
        report = result.report
        assert report.engine == "tahoe-fleet"
        engine_decisions = sum(
            len(engine.recorder.decisions)
            for shard in router.shards
            for engine in shard.server.engines
        )
        assert engine_decisions > 0
        # merged calibration equals the sum of per-shard folds — each
        # decision counted exactly once, fractions recomputed not summed
        per_shard = [shard.server.build_report() for shard in router.shards]
        assert report.calibration["n_decisions"] == engine_decisions
        assert report.calibration["n_decisions"] == sum(
            r.calibration["n_decisions"] for r in per_shard
        )
        assert 0.0 <= report.calibration["ranking_at_risk_fraction"] <= 1.0
        # batch indices re-based per shard: globally unique
        indices = [b.index for b in report.batches]
        assert len(indices) == len(set(indices))
        assert len(report.meta["shards"]) == 2
