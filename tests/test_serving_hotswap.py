"""Hot model swap in :class:`TahoeServer` and cache pinning under a
replica pool: staging happens off the hot path, the swap lands between
micro-batches, nothing is dropped, and the served version can never be
evicted out from under the pool."""

import numpy as np
import pytest

from repro.core.cache import LayoutCache
from repro.core.config import TahoeConfig
from repro.core.engine import TahoeEngine
from repro.modelstore import load_packed, pack_forest
from repro.serving.server import SchedulerConfig, TahoeServer
from repro.serving.workload import poisson_workload


def _server(forest, spec, **kwargs):
    kwargs.setdefault(
        "scheduler", SchedulerConfig(n_engines=2, max_wait=1e-3, max_batch=64)
    )
    return TahoeServer(forest, spec, **kwargs)


class TestHotSwapUnderTraffic:
    def test_swap_drops_nothing_and_serves_both_versions(
        self, small_forest, small_gbdt, p100, test_X
    ):
        srv = _server(small_forest, p100)
        requests = poisson_workload(test_X, qps=4000, duration=0.05, seed=5)
        srv.stage(forest=small_gbdt, at_time=0.02)
        srv.schedule_swap(at_time=0.025)
        result = srv.run(requests)

        assert len(result.responses) == len(requests)
        assert all(r.ok for r in result.responses)  # zero dropped
        model = result.summary["model"]
        assert model["swaps"] == 1
        assert model["active"] == "default@v2"
        served = model["served_by_version"]
        assert set(served) == {"default@v1", "default@v2"}
        assert all(count > 0 for count in served.values())
        assert sum(served.values()) == len(requests)

    def test_versions_are_monotone_across_the_swap(
        self, small_forest, small_gbdt, p100, test_X
    ):
        srv = _server(small_forest, p100)
        requests = poisson_workload(test_X, qps=4000, duration=0.05, seed=5)
        srv.stage(forest=small_gbdt)
        srv.schedule_swap(at_time=0.025)
        result = srv.run(requests)
        # Batches form in arrival order and the swap lands between
        # batches, so in request order v1 responses strictly precede v2.
        versions = [r.model_version for r in result.responses]
        first_v2 = versions.index("default@v2")
        assert all(v == "default@v1" for v in versions[:first_v2])
        assert all(v == "default@v2" for v in versions[first_v2:])

    def test_swap_event_recorded_everywhere(self, small_forest, small_gbdt, p100, test_X):
        srv = _server(small_forest, p100)
        srv.stage(forest=small_gbdt)
        srv.schedule_swap(at_time=0.01)
        result = srv.run(poisson_workload(test_X, qps=3000, duration=0.03, seed=2))
        events = result.summary["model"]["swap_events"]
        assert len(events) == 1
        assert events[0]["from_label"] == "default@v1"
        assert events[0]["to_label"] == "default@v2"
        assert events[0]["time"] >= 0.01
        assert srv.registry.events[-1]["to_version"] == 2
        assert (
            srv.recorder.metrics.counter("serving.model_swaps").value == 1
        )

    def test_immediate_swap_flips_the_pool(self, small_forest, small_gbdt, p100):
        srv = _server(small_forest, p100)
        old_engines = srv.engines
        mv = srv.stage(forest=small_gbdt)
        assert srv.active_version.version == 1  # staging alone changes nothing
        event = srv.swap(mv.version)
        assert srv.active_version.version == 2
        assert srv.engines is not old_engines
        assert event["from_label"] == "default@v1"
        assert srv.target_batch >= 1  # flush point re-planned for the new model

    def test_swap_requires_a_staged_version(self, small_forest, p100):
        srv = _server(small_forest, p100)
        with pytest.raises(ValueError, match="no staged version"):
            srv.schedule_swap()
        with pytest.raises(ValueError, match="no staged version"):
            srv.swap()
        with pytest.raises(ValueError, match="not staged"):
            srv.swap(7)


class TestStagingFromArtifact:
    def test_staged_pool_adopts_packed_layout_without_conversion(
        self, small_forest, small_gbdt, p100, tmp_path, test_X
    ):
        packed = load_packed(pack_forest(small_gbdt, p100, tmp_path / "v2.tahoe").path)
        srv = _server(small_forest, p100)
        mv = srv.stage(packed=packed)
        staged = srv._staged[mv.version]
        assert all(e.conversion_stats.source == "artifact" for e in staged)
        assert all(e.layout is packed.layout for e in staged)
        srv.swap(mv.version)
        cold = TahoeEngine(small_gbdt, p100)
        np.testing.assert_array_equal(
            srv.engines[0].predict(test_X).predictions,
            cold.predict(test_X).predictions,
        )

    def test_server_boots_directly_from_artifact(
        self, small_forest, p100, tmp_path, test_X
    ):
        packed = load_packed(
            pack_forest(small_forest, p100, tmp_path / "boot.tahoe").path
        )
        srv = _server(None, p100, packed=packed)
        assert srv.active_version.source == "artifact"
        assert all(e.conversion_stats.source == "artifact" for e in srv.engines)
        result = srv.run(poisson_workload(test_X, qps=2000, duration=0.01, seed=1))
        assert all(r.ok for r in result.responses)


class TestCacheUnderPool:
    """Satellite: LayoutCache interaction with live engine pools."""

    def test_eviction_while_replica_holds_layout(
        self, small_forest, small_gbdt, p100, test_X
    ):
        cache = LayoutCache(capacity=1)
        engine = TahoeEngine(small_forest, p100, layout_cache=cache)
        key = LayoutCache.key(small_forest, p100, TahoeConfig().conversion_key())
        assert key in cache
        baseline = engine.predict(test_X).predictions
        # A different forest converting through the same capacity-1 cache
        # evicts the entry — the replica keeps its adopted layout and
        # must keep serving identical results.
        TahoeEngine(small_gbdt, p100, layout_cache=cache)
        assert key not in cache
        np.testing.assert_array_equal(engine.predict(test_X).predictions, baseline)
        # A *new* engine for the evicted forest has to reconvert.
        rebuilt = TahoeEngine(small_forest, p100, layout_cache=cache)
        assert rebuilt.conversion_stats.source == "pipeline"
        np.testing.assert_array_equal(rebuilt.predict(test_X).predictions, baseline)

    def test_replicas_share_one_layout_through_the_cache(self, small_forest, p100):
        srv = _server(small_forest, p100)
        assert srv.engines[0].layout is srv.engines[1].layout
        assert srv.engines[1].conversion_stats.cache_hit

    def test_staging_never_evicts_the_served_version(
        self, small_forest, small_gbdt, p100
    ):
        cache = LayoutCache(capacity=1)
        srv = _server(small_forest, p100, layout_cache=cache)
        active_key = srv._active_key
        assert cache.pinned(active_key)
        # Staging a second version through a capacity-1 cache would evict
        # the served layout if pinning didn't hold it: both must stay
        # resident (temporary overflow is the accepted cost).
        srv.stage(forest=small_gbdt)
        assert active_key in cache
        stats = cache.stats()
        assert stats["pinned"] == 2
        assert stats["entries"] == 2
        # The swap hands the pin over to the new version.
        srv.swap()
        assert not cache.pinned(active_key)
        assert cache.pinned(srv._active_key)
        assert srv._active_key in cache
