"""Property-based bit-identity: NativeEngine vs the simulator.

The native backend's headline claim is *bit-identical* predictions, not
approximately-equal ones, so the property sweep randomizes forest
structure (ragged depths, duplicate thresholds, default-left flags),
aggregation semantics (mean vs sum with shrinkage and base score), and
batch contents (including NaN and values exactly on thresholds) and
asserts ``array_equal`` throughout.  Leaf values are dyadic rationals
(integer / 16) so every float32 sum is exact regardless of association —
any mismatch is a traversal bug, never float noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TahoeEngine
from repro.core.native import NativeEngine
from repro.trees.forest import Forest
from repro.trees.tree import LEAF, DecisionTree


@st.composite
def random_forests(draw):
    """A small random forest plus a batch of inference rows."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_features = draw(st.integers(1, 5))
    n_trees = draw(st.integers(1, 6))
    max_depth = draw(st.integers(1, 5))
    aggregation = draw(st.sampled_from(["mean", "sum"]))
    rng = np.random.default_rng(seed)

    def grow_tree():
        feature, threshold, left, right = [], [], [], []
        value, default_left, visits = [], [], []

        def grow(depth):
            node = len(feature)
            feature.append(LEAF)
            # Thresholds on a coarse grid force exact-equality ties.
            threshold.append(0.0)
            left.append(LEAF)
            right.append(LEAF)
            value.append(float(rng.integers(-32, 32)) / 16.0)
            default_left.append(bool(rng.random() < 0.5))
            visits.append(1)
            if depth < max_depth and rng.random() < 0.7:
                feature[node] = int(rng.integers(0, n_features))
                threshold[node] = float(rng.integers(-4, 4)) / 2.0
                left[node] = grow(depth + 1)
                right[node] = grow(depth + 1)
            return node

        grow(0)
        return DecisionTree(
            feature=np.array(feature, dtype=np.int32),
            threshold=np.array(threshold, dtype=np.float32),
            left=np.array(left, dtype=np.int32),
            right=np.array(right, dtype=np.int32),
            value=np.array(value, dtype=np.float32),
            default_left=np.array(default_left),
            visit_count=np.array(visits, dtype=np.int64),
        )

    forest = Forest(
        trees=[grow_tree() for _ in range(n_trees)],
        n_attributes=n_features,
        task="regression",
        aggregation=aggregation,
        base_score=float(rng.integers(-8, 8)) / 4.0 if aggregation == "sum" else 0.0,
        learning_rate=0.5 if aggregation == "sum" else 1.0,
    )

    n_rows = draw(st.integers(1, 40))
    with_nan = draw(st.booleans())
    # Sample values from the same grid as the thresholds so equality
    # ties (strictly-less routing) are exercised constantly.
    X = (rng.integers(-6, 6, size=(n_rows, n_features)) / 2.0).astype(np.float32)
    if with_nan:
        mask = rng.random(X.shape) < 0.2
        X[mask] = np.nan
    return forest, X


@given(random_forests())
@settings(max_examples=50, deadline=None)
def test_native_is_bit_identical_to_tahoe(p100, case):
    forest, X = case
    native = NativeEngine(forest, p100, kernel="numpy")
    tahoe = TahoeEngine(forest, p100)
    assert np.array_equal(
        native.predict(X).predictions,
        tahoe.predict(X).predictions,
        equal_nan=True,
    )


@given(random_forests())
@settings(max_examples=20, deadline=None)
def test_scalar_kernel_agrees_with_numpy(p100, case):
    forest, X = case
    fast = NativeEngine(forest, p100, kernel="numpy")
    slow = NativeEngine(forest, p100, kernel="scalar")
    assert np.array_equal(
        fast.predict(X).predictions,
        slow.predict(X).predictions,
        equal_nan=True,
    )


@given(st.integers(1, 8))
@settings(max_examples=5, deadline=None)
def test_empty_batch_always_raises(p100, n_features):
    tree = DecisionTree(
        feature=np.array([LEAF], dtype=np.int32),
        threshold=np.zeros(1, dtype=np.float32),
        left=np.array([LEAF], dtype=np.int32),
        right=np.array([LEAF], dtype=np.int32),
        value=np.ones(1, dtype=np.float32),
        default_left=np.zeros(1, dtype=bool),
        visit_count=np.ones(1, dtype=np.int64),
    )
    forest = Forest(trees=[tree], n_attributes=n_features, task="regression")
    engine = NativeEngine(forest, p100)
    with pytest.raises(ValueError, match="empty inference batch"):
        engine.predict(np.empty((0, n_features), dtype=np.float32))
