"""Tests for the traffic-to-time conversion and multi-GPU model."""

import numpy as np
import pytest

from repro.gpusim.counters import TrafficCounters
from repro.gpusim.engine_sim import ExecutionBreakdown, execution_time, imbalance_factor
from repro.gpusim.multigpu import simulate_multi_gpu, weak_scaling_times


def _counters(global_fetched=1 << 20, shared=0):
    t = TrafficCounters()
    t.forest_global.add(global_fetched // 2, global_fetched, global_fetched // 128, 100)
    if shared:
        t.shared_read.add(shared, shared, shared // 128, 100)
    return t


class TestImbalanceFactor:
    def test_uniform_work_factor_one(self):
        assert imbalance_factor(np.array([5, 5, 5])) == 1.0

    def test_skewed_work(self):
        assert imbalance_factor(np.array([1, 1, 4])) == pytest.approx(2.0)

    def test_empty_and_none(self):
        assert imbalance_factor(None) == 1.0
        assert imbalance_factor(np.array([])) == 1.0

    def test_zero_work(self):
        assert imbalance_factor(np.zeros(4)) == 1.0


class TestExecutionTime:
    def test_more_traffic_more_time(self, p100):
        small = execution_time(_counters(1 << 18), p100, 10000, 256, 40)
        big = execution_time(_counters(1 << 22), p100, 10000, 256, 40)
        assert big.t_global > small.t_global

    def test_low_parallelism_slower_per_byte(self, p100):
        """The same traffic takes longer when the launch cannot saturate
        bandwidth — the root of the paper's smaller low-parallelism
        speedups."""
        high = execution_time(_counters(), p100, 100000, 256, 400)
        low = execution_time(_counters(), p100, 100, 256, 1)
        assert low.t_global > high.t_global

    def test_imbalance_stretches_traversal(self, p100):
        even = execution_time(
            _counters(), p100, 10000, 256, 40, per_thread_steps=np.array([3, 3, 3])
        )
        skew = execution_time(
            _counters(), p100, 10000, 256, 40, per_thread_steps=np.array([1, 1, 7])
        )
        assert skew.total > even.total
        assert skew.imbalance == pytest.approx(7 / 3)

    def test_reductions_added(self, p100):
        base = execution_time(_counters(), p100, 10000, 256, 40)
        with_reduce = execution_time(
            _counters(), p100, 10000, 256, 40, block_reduction_events=1000
        )
        assert with_reduce.t_block_reduce > 0
        assert with_reduce.total > base.total

    def test_global_reduction_added(self, p100):
        r = execution_time(
            _counters(), p100, 10000, 256, 40,
            global_reduction_events=2, global_reduction_blocks=8,
        )
        assert r.t_global_reduce == pytest.approx(2 * 8 * p100.global_reduce_rate)

    def test_launch_latency_per_kernel(self, p100):
        one = execution_time(_counters(), p100, 1000, 256, 4, n_kernels=1)
        five = execution_time(_counters(), p100, 1000, 256, 4, n_kernels=5)
        assert five.t_launch == pytest.approx(5 * one.t_launch)

    def test_reduction_share_metric(self, p100):
        r = execution_time(
            _counters(1 << 10), p100, 10000, 256, 40, block_reduction_events=100000
        )
        assert 0 < r.reduction_share <= 1

    def test_rejects_bad_geometry(self, p100):
        with pytest.raises(ValueError):
            execution_time(_counters(), p100, 100, 0, 1)
        with pytest.raises(ValueError):
            execution_time(_counters(), p100, 100, 256, 0)

    def test_shared_traffic_priced(self, p100):
        no_shared = execution_time(_counters(shared=0), p100, 10000, 256, 40)
        shared = execution_time(_counters(shared=1 << 22), p100, 10000, 256, 40)
        assert shared.t_shared > no_shared.t_shared


class TestMultiGPU:
    def test_strong_scaling_monotone_for_linear_workload(self):
        result = simulate_multi_gpu(lambda n: 1e-6 * n + 1e-5, 100000, [1, 2, 4, 8])
        assert result.speedups[0] == pytest.approx(1.0)
        assert all(np.diff(result.speedups) > 0)

    def test_saturation_for_fixed_overhead(self):
        """When fixed overhead dominates tiny shards, speedup flattens —
        the HOCK/gisette/phishing behaviour in figure 9."""
        result = simulate_multi_gpu(lambda n: 1e-8 * n + 1e-3, 1000, [1, 32, 128])
        assert result.speedups[-1] < 2.0

    def test_shards_cover_all_samples(self):
        seen = []
        simulate_multi_gpu(lambda n: seen.append(n) or 1.0, 1000, [3])
        assert seen[0] == 334  # ceil(1000/3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            simulate_multi_gpu(lambda n: 1.0, 0, [1])
        with pytest.raises(ValueError):
            simulate_multi_gpu(lambda n: 1.0, 10, [0])

    def test_weak_scaling_flat(self):
        times = weak_scaling_times(lambda n: 1e-6 * n, 5000, [1, 2, 4])
        assert max(times) - min(times) < 1e-12
