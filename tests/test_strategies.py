"""Tests for the four inference strategies."""

import dataclasses

import numpy as np
import pytest

from repro.formats import build_adaptive_layout, build_reorg_layout
from repro.strategies import (
    DirectStrategy,
    SharedDataStrategy,
    SharedForestStrategy,
    SplittingSharedForestStrategy,
    StrategyNotApplicable,
    coefficient_of_variation,
    finalize_predictions,
)
from repro.formats.partition import PartitionError, partition_trees


@pytest.fixture(scope="module")
def adaptive_layout(request):
    forest = request.getfixturevalue("small_forest")
    return build_adaptive_layout(forest)


@pytest.fixture(scope="module")
def gbdt_layout(request):
    forest = request.getfixturevalue("small_gbdt")
    return build_adaptive_layout(forest)


class TestFinalizePredictions:
    def test_mean(self, small_forest, test_X):
        leaf_sum = sum(t.predict(test_X).astype(np.float64) for t in small_forest.trees)
        np.testing.assert_allclose(
            finalize_predictions(small_forest, leaf_sum),
            small_forest.predict(test_X),
            rtol=1e-6,
        )

    def test_sum_with_sigmoid(self, small_gbdt, test_X):
        leaf_sum = sum(t.predict(test_X).astype(np.float64) for t in small_gbdt.trees)
        np.testing.assert_allclose(
            finalize_predictions(small_gbdt, leaf_sum),
            small_gbdt.predict(test_X),
            rtol=1e-5,
        )


class TestCoefficientOfVariation:
    def test_uniform_zero(self):
        assert coefficient_of_variation(np.array([3, 3, 3])) == 0.0

    def test_empty_zero(self):
        assert coefficient_of_variation(np.array([])) == 0.0

    def test_known_value(self):
        cv = coefficient_of_variation(np.array([1.0, 3.0]))
        assert cv == pytest.approx(0.5)


class TestEachStrategy:
    @pytest.mark.parametrize(
        "strategy_cls",
        [SharedDataStrategy, DirectStrategy, SharedForestStrategy, SplittingSharedForestStrategy],
    )
    def test_predictions_match_reference(
        self, strategy_cls, adaptive_layout, small_forest, test_X, p100
    ):
        result = strategy_cls().run(adaptive_layout, test_X, p100)
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X), rtol=1e-5
        )

    @pytest.mark.parametrize(
        "strategy_cls",
        [SharedDataStrategy, DirectStrategy, SharedForestStrategy, SplittingSharedForestStrategy],
    )
    def test_gbdt_predictions(self, strategy_cls, gbdt_layout, small_gbdt, test_X, p100):
        result = strategy_cls().run(gbdt_layout, test_X, p100)
        np.testing.assert_allclose(
            result.predictions, small_gbdt.predict(test_X), rtol=1e-4, atol=1e-6
        )

    @pytest.mark.parametrize(
        "strategy_cls",
        [SharedDataStrategy, DirectStrategy, SharedForestStrategy, SplittingSharedForestStrategy],
    )
    def test_positive_time_and_throughput(
        self, strategy_cls, adaptive_layout, test_X, p100
    ):
        result = strategy_cls().run(adaptive_layout, test_X, p100)
        assert result.time > 0
        assert result.throughput > 0
        assert result.batch_size == test_X.shape[0]

    def test_sample_rows_subset(self, adaptive_layout, small_forest, test_X, p100):
        rows = np.array([1, 5, 9, 33])
        result = DirectStrategy().run(adaptive_layout, test_X, p100, sample_rows=rows)
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X[rows]), rtol=1e-5
        )


class TestSharedData:
    def test_uses_block_reduction(self, adaptive_layout, test_X, p100):
        result = SharedDataStrategy().run(adaptive_layout, test_X, p100)
        assert result.breakdown.t_block_reduce > 0
        assert result.breakdown.t_global_reduce == 0

    def test_samples_staged_to_shared(self, adaptive_layout, test_X, p100):
        result = SharedDataStrategy().run(adaptive_layout, test_X, p100)
        assert result.counters.shared_write.requested_bytes > 0
        assert result.counters.shared_read.requested_bytes > 0

    def test_samples_per_block(self, adaptive_layout, p100):
        s = SharedDataStrategy()
        cap = s.samples_per_block(adaptive_layout, p100)
        # letter: 16 attributes * 4 B = 64 B per sample.
        assert cap == p100.shared_mem_per_block // 64

    def test_huge_sample_falls_back_to_global(self, small_forest, test_X, p100):
        tiny = dataclasses.replace(p100, shared_mem_per_block=32)
        layout = build_adaptive_layout(small_forest)
        result = SharedDataStrategy().run(layout, test_X, tiny)
        assert result.counters.shared_read.requested_bytes == 0

    def test_level_stats_collected(self, adaptive_layout, test_X, p100):
        result = SharedDataStrategy().run(
            adaptive_layout, test_X, p100, collect_level_stats=True
        )
        assert result.level_stats is not None


class TestDirect:
    def test_reduction_free_no_shared(self, adaptive_layout, test_X, p100):
        result = DirectStrategy().run(adaptive_layout, test_X, p100)
        assert result.breakdown.t_block_reduce == 0
        assert result.breakdown.t_global_reduce == 0
        assert result.counters.shared_read.requested_bytes == 0


class TestSharedForest:
    def test_rejects_oversized_forest(self, adaptive_layout, test_X, p100):
        tiny = dataclasses.replace(p100, shared_mem_per_block=64)
        with pytest.raises(StrategyNotApplicable):
            SharedForestStrategy().run(adaptive_layout, test_X, tiny)

    def test_forest_reads_from_shared(self, adaptive_layout, test_X, p100):
        result = SharedForestStrategy().run(adaptive_layout, test_X, p100)
        assert result.counters.forest_global.requested_bytes == 0
        assert result.counters.shared_read.requested_bytes > 0

    def test_is_applicable(self, adaptive_layout, p100):
        assert SharedForestStrategy().is_applicable(adaptive_layout, p100)
        tiny = dataclasses.replace(p100, shared_mem_per_block=64)
        assert not SharedForestStrategy().is_applicable(adaptive_layout, tiny)


class TestSplitting:
    def test_partition_covers_all_trees(self, adaptive_layout, p100):
        parts = partition_trees(adaptive_layout, 4096)
        combined = sorted(p for part in parts for p in part)
        assert combined == list(range(adaptive_layout.n_trees))

    def test_partition_respects_capacity(self, adaptive_layout):
        from repro.formats.layout import build_interleaved_layout

        capacity = 4096
        parts = partition_trees(adaptive_layout, capacity)
        forest = adaptive_layout.forest
        for part in parts:
            sub = forest.with_trees([forest.trees[p] for p in part])
            sub_layout = build_interleaved_layout(
                sub, adaptive_layout.record, None, "check"
            )
            assert sub_layout.total_bytes <= capacity

    def test_partition_rejects_oversized_tree(self, adaptive_layout):
        with pytest.raises(PartitionError):
            partition_trees(adaptive_layout, 8)

    def test_multi_part_run(self, adaptive_layout, small_forest, test_X, p100):
        tiny = dataclasses.replace(p100, shared_mem_per_block=4096)
        result = SplittingSharedForestStrategy().run(adaptive_layout, test_X, tiny)
        assert result.n_blocks > 1
        np.testing.assert_allclose(
            result.predictions, small_forest.predict(test_X), rtol=1e-5
        )

    def test_global_reduction_charged(self, adaptive_layout, test_X, p100):
        result = SplittingSharedForestStrategy().run(adaptive_layout, test_X, p100)
        assert result.breakdown.t_global_reduce > 0
        assert result.breakdown.t_block_reduce == 0

    def test_forest_staging_charged(self, adaptive_layout, test_X, p100):
        result = SplittingSharedForestStrategy().run(adaptive_layout, test_X, p100)
        assert result.counters.forest_global.requested_bytes > 0
        assert result.counters.shared_write.requested_bytes > 0
