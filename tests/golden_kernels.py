"""Deterministic kernel/strategy scenarios for equivalence goldens.

The PR-2 kernel rewrite (packed-key memory model, batched trace
accounting) must be *bit-identical* to the original per-level kernels.
This module defines a fixed set of scenarios covering both trace
mappings, every node/sample memory-space combination and all four
strategies, and serialises every observable output — counters, level
stats, per-thread steps, leaf sums, predictions — into plain JSON.

``python tests/golden_kernels.py`` regenerates
``tests/goldens/kernel_equivalence.json`` (run against the *reference*
implementation); ``tests/test_kernel_equivalence.py`` asserts the
current implementation reproduces the file exactly.  JSON floats
round-trip exactly (``repr`` is shortest-roundtrip), so ``==`` on the
decoded structures is a bit-identity check.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core import TahoeEngine
from repro.datasets import load_dataset, train_test_split
from repro.formats import build_adaptive_layout, build_reorg_layout
from repro.formats.tree_rearrange import round_robin_assignment
from repro.gpusim.specs import GPU_SPECS
from repro.gpusim.trace import trace_sample_parallel, trace_tree_parallel
from repro.strategies import ALL_STRATEGIES, StrategyNotApplicable
from repro.trees import GBDTTrainer, RandomForestTrainer

GOLDEN_PATH = Path(__file__).resolve().parent / "goldens" / "kernel_equivalence.json"


def _arr(a) -> list:
    """Exact JSON-able view of an ndarray (floats round-trip via repr)."""
    return np.asarray(a).tolist()


def _counters(c) -> dict:
    return {
        name: {
            "requested_bytes": int(m.requested_bytes),
            "fetched_bytes": int(m.fetched_bytes),
            "transactions": int(m.transactions),
            "accesses": int(m.accesses),
        }
        for name, m in (
            ("forest_global", c.forest_global),
            ("sample_global", c.sample_global),
            ("output_global", c.output_global),
            ("shared_read", c.shared_read),
            ("shared_write", c.shared_write),
        )
    }


def _level_stats(ls) -> dict | None:
    if ls is None:
        return None
    return {
        "distance_sum": _arr(ls.distance_sum),
        "pair_count": _arr(ls.pair_count),
        "requested": _arr(ls.requested),
        "fetched": _arr(ls.fetched),
    }


def _trace_result(tr) -> dict:
    return {
        "leaf_sum": _arr(tr.leaf_sum),
        "per_thread_steps": _arr(tr.per_thread_steps),
        "counters": _counters(tr.counters),
        "level_stats": _level_stats(tr.level_stats),
        "node_visits": int(tr.node_visits),
    }


def _workloads():
    data = load_dataset("letter", scale=0.08, seed=11)
    split = train_test_split(data, seed=11)
    rf = RandomForestTrainer(
        n_trees=24, max_depth=6, depth_jitter=0.5, feature_fraction=0.5, seed=3
    ).fit(split.train)
    gbdt = GBDTTrainer(n_trees=16, max_depth=4, depth_jitter=0.4, seed=3).fit(
        split.train
    )
    X = split.test.X[:120].copy()
    # Exercise the missing-value default-direction path.
    X_nan = X.copy()
    X_nan[::7, 0] = np.nan
    X_nan[3::11, 2] = np.nan
    return rf, gbdt, X, X_nan


def run_all() -> dict:
    """Run every scenario and return the full observable-output tree."""
    spec = GPU_SPECS["P100"]
    rf, gbdt, X, X_nan = _workloads()
    out: dict = {"kernels": {}, "strategies": {}, "engine": {}}

    # --- raw kernels -----------------------------------------------------
    for forest_name, forest, samples in (
        ("rf", rf, X),
        ("rf_nan", rf, X_nan),
        ("gbdt", gbdt, X),
    ):
        layout = build_adaptive_layout(forest)
        reorg = build_reorg_layout(forest)
        rows = np.arange(96, dtype=np.int64)
        assign = round_robin_assignment(forest.n_trees, 48)
        key = f"tree_parallel/{forest_name}"
        out["kernels"][key] = {}
        for node_space, sample_space in (
            ("global", "shared"),
            ("global", "global"),
            ("shared", "shared"),
        ):
            tr = trace_tree_parallel(
                layout,
                samples,
                rows,
                assign,
                spec,
                node_space=node_space,
                sample_space=sample_space,
                collect_level_stats=True,
                chunk=40,
            )
            out["kernels"][key][f"{node_space}/{sample_space}"] = _trace_result(tr)
        # Reorg layout, default spaces, odd row set (non-multiple of chunk).
        tr = trace_tree_parallel(
            reorg, samples, np.arange(77, dtype=np.int64), assign, spec, chunk=33
        )
        out["kernels"][key]["reorg/default"] = _trace_result(tr)

        key = f"sample_parallel/{forest_name}"
        out["kernels"][key] = {}
        trees = np.arange(forest.n_trees, dtype=np.int64)
        for node_space, sample_space in (
            ("global", "global"),
            ("shared", "global"),
            ("shared", "shared"),
        ):
            tr = trace_sample_parallel(
                layout,
                samples,
                np.arange(90, dtype=np.int64),
                trees,
                spec,
                node_space=node_space,
                sample_space=sample_space,
                collect_level_stats=True,
                chunk_warps=2,
            )
            out["kernels"][key][f"{node_space}/{sample_space}"] = _trace_result(tr)
        # Tree subset on the reorg layout (the splitting strategy's shape).
        tr = trace_sample_parallel(
            reorg,
            samples,
            np.arange(51, dtype=np.int64),
            trees[1::2],
            spec,
            chunk_warps=1,
        )
        out["kernels"][key]["reorg/subset"] = _trace_result(tr)

    # --- the four strategies --------------------------------------------
    for forest_name, forest, samples in (("rf", rf, X), ("gbdt", gbdt, X_nan)):
        layout = build_adaptive_layout(forest)
        rows = np.arange(100, dtype=np.int64)
        for cls in ALL_STRATEGIES:
            strategy = cls()
            try:
                result = strategy.run(
                    layout, samples, spec, sample_rows=rows, collect_level_stats=True
                )
            except StrategyNotApplicable as exc:
                out["strategies"][f"{strategy.name}/{forest_name}"] = {
                    "not_applicable": str(exc)
                }
                continue
            out["strategies"][f"{strategy.name}/{forest_name}"] = {
                "predictions": _arr(result.predictions),
                "counters": _counters(result.counters),
                "per_thread_steps": _arr(result.per_thread_steps),
                "level_stats": _level_stats(result.level_stats),
                "n_blocks": int(result.n_blocks),
                "threads_per_block": int(result.threads_per_block),
            }

    # --- engine end-to-end (selector + COA probe included) ---------------
    engine = TahoeEngine(rf, spec)
    er = engine.predict(X, batch_size=64)
    out["engine"]["rf/batch64"] = {
        "predictions": _arr(er.predictions),
        "total_time": float(er.total_time),
        "strategies_used": list(er.strategies_used),
    }
    return out


def main() -> None:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    payload = {"schema_version": 1, "scenarios": run_all()}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
