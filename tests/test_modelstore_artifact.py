"""Packed ``.tahoe`` artifact: exact round-trip, integrity checking, and
zero-conversion engine construction."""

import struct

import numpy as np
import pytest

from repro.core import TahoeEngine
from repro.core.cache import LayoutCache
from repro.core.fil import FILEngine
from repro.modelstore import load_packed, pack_forest
from repro.modelstore.artifact import ARTIFACT_MAGIC, ArtifactError

_STAGES = (
    "t_fetch_probabilities",
    "t_node_rearrangement",
    "t_similarity_detection",
    "t_format_conversion",
    "t_copy_to_gpu",
)


@pytest.fixture()
def packed_path(small_forest, p100, tmp_path):
    path = tmp_path / "model.tahoe"
    pack_forest(small_forest, p100, path)
    return path


class TestRoundTrip:
    def test_layout_and_forest_survive(self, small_forest, p100, packed_path):
        cold = TahoeEngine(small_forest, p100)
        packed = load_packed(packed_path)
        assert packed.engine_kind == "tahoe"
        assert packed.spec_name == p100.name
        assert packed.source_fingerprint == small_forest.fingerprint()
        restored = packed.layout
        assert restored.format_name == cold.layout.format_name
        assert restored.total_bytes == cold.layout.total_bytes
        assert restored.tree_order == cold.layout.tree_order
        np.testing.assert_array_equal(restored.level_base, cold.layout.level_base)
        for a, b in zip(restored.forest.trees, cold.layout.forest.trees):
            np.testing.assert_array_equal(a.feature, b.feature)
            np.testing.assert_array_equal(
                a.threshold.view(np.int32), b.threshold.view(np.int32)
            )
            np.testing.assert_array_equal(a.flip, b.flip)

    def test_predictions_bit_identical(self, small_forest, p100, packed_path, test_X):
        cold = TahoeEngine(small_forest, p100)
        engine = load_packed(packed_path).make_engine(p100)
        np.testing.assert_array_equal(
            engine.predict(test_X).predictions, cold.predict(test_X).predictions
        )

    def test_packed_engine_skips_conversion(self, p100, packed_path):
        engine = load_packed(packed_path).make_engine(p100)
        stats = engine.conversion_stats
        assert stats.source == "artifact"
        for stage in _STAGES:
            assert getattr(stats, stage) == 0.0

    def test_gbdt_scalars_survive(self, small_gbdt, p100, tmp_path, test_X):
        path = tmp_path / "gbdt.tahoe"
        pack_forest(small_gbdt, p100, path)
        packed = load_packed(path)
        forest = packed.layout.forest
        assert forest.aggregation == "sum"
        assert forest.base_score == pytest.approx(small_gbdt.base_score)
        assert forest.learning_rate == pytest.approx(small_gbdt.learning_rate)
        cold = TahoeEngine(small_gbdt, p100)
        np.testing.assert_array_equal(
            packed.make_engine(p100).predict(test_X).predictions,
            cold.predict(test_X).predictions,
        )

    def test_fil_engine_kind(self, small_forest, p100, tmp_path, test_X):
        path = tmp_path / "fil.tahoe"
        pack_forest(small_forest, p100, path, engine="fil")
        packed = load_packed(path)
        assert packed.engine_kind == "fil"
        engine = packed.make_engine(p100)
        assert isinstance(engine, FILEngine)
        cold = FILEngine(small_forest, p100)
        np.testing.assert_array_equal(
            engine.predict(test_X).predictions, cold.predict(test_X).predictions
        )

    def test_unknown_engine_kind_rejected(self, small_forest, p100, tmp_path):
        with pytest.raises(ArtifactError, match="engine kind"):
            pack_forest(small_forest, p100, tmp_path / "x.tahoe", engine="treelite")

    def test_runtime_metadata_not_packed(self, packed_path):
        header = load_packed(packed_path).header
        assert not any(k.startswith("_") for k in header["layout"]["metadata"])


class TestCachePublication:
    def test_artifact_feeds_layout_cache(self, small_forest, p100, packed_path):
        cache = LayoutCache(capacity=4)
        packed = load_packed(packed_path)
        engine = packed.make_engine(p100, layout_cache=cache)
        # A cold engine built later from the *source* forest must hit the
        # published entry instead of reconverting.
        warm = TahoeEngine(small_forest, p100, layout_cache=cache)
        assert warm.conversion_stats.source == "cache"
        assert warm.layout is engine.layout

    def test_cache_key_matches_cold_lookup(self, small_forest, p100, packed_path):
        from repro.core.config import TahoeConfig

        packed = load_packed(packed_path)
        expected = LayoutCache.key(
            small_forest, p100, TahoeConfig().conversion_key()
        )
        assert packed.cache_key == expected


class TestIntegrity:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.tahoe"
        path.write_bytes(b"NOTTAHOE" + b"\x00" * 32)
        with pytest.raises(ArtifactError, match="magic"):
            load_packed(path)

    def test_truncated_header_rejected(self, packed_path, tmp_path):
        raw = packed_path.read_bytes()
        stub = tmp_path / "trunc.tahoe"
        stub.write_bytes(raw[: len(ARTIFACT_MAGIC) + 4 + 10])
        with pytest.raises(ArtifactError, match="truncated"):
            load_packed(stub)

    def test_bit_flip_fails_crc(self, packed_path, tmp_path):
        raw = bytearray(packed_path.read_bytes())
        raw[-1] ^= 0xFF  # corrupt the final section's payload
        bad = tmp_path / "flipped.tahoe"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="crc32"):
            load_packed(bad)

    def test_future_version_rejected(self, packed_path, tmp_path):
        raw = packed_path.read_bytes()
        (header_len,) = struct.unpack_from("<I", raw, len(ARTIFACT_MAGIC))
        start = len(ARTIFACT_MAGIC) + 4
        header = raw[start : start + header_len].replace(
            b'"artifact_version":3', b'"artifact_version":9'
        )
        assert len(header) == header_len  # same-length in-place edit
        future = tmp_path / "future.tahoe"
        future.write_bytes(raw[:start] + header + raw[start + header_len :])
        with pytest.raises(ArtifactError, match="version"):
            load_packed(future)

    def test_spec_mismatch_rejected(self, packed_path):
        from repro.gpusim.specs import GPU_SPECS

        with pytest.raises(ArtifactError, match="packed for"):
            load_packed(packed_path).make_engine(GPU_SPECS["K80"])
