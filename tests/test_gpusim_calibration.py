"""Tests for the calibration utilities."""

import pytest

from repro.core import FILEngine
from repro.formats import build_reorg_layout
from repro.gpusim.calibration import (
    calibrate_block_reduce_rate,
    reduction_share_of,
)
from repro.strategies import SharedDataStrategy


class TestCalibration:
    def test_fits_target_share(self, small_forest, test_X, p100):
        def measure(spec):
            return reduction_share_of(FILEngine(small_forest, spec).predict(test_X))

        result = calibrate_block_reduce_rate(p100, measure, target_share=0.5)
        assert result.achieved == pytest.approx(0.5, abs=0.08)
        assert result.spec.block_reduce_rate == result.value
        # Only the fitted field changed.
        assert result.spec.global_bw == p100.global_bw

    def test_monotone_direction(self, small_forest, test_X, p100):
        import dataclasses

        def measure(spec):
            return reduction_share_of(FILEngine(small_forest, spec).predict(test_X))

        low = measure(dataclasses.replace(p100, block_reduce_rate=1e-9))
        high = measure(dataclasses.replace(p100, block_reduce_rate=1e-6))
        assert high > low

    def test_share_helper_accepts_strategy_result(self, small_forest, test_X, p100):
        layout = build_reorg_layout(small_forest)
        r = SharedDataStrategy().run(layout, test_X, p100)
        assert 0 <= reduction_share_of(r) <= 1

    def test_rejects_bad_target(self, p100):
        with pytest.raises(ValueError):
            calibrate_block_reduce_rate(p100, lambda s: 0.5, target_share=1.5)
        with pytest.raises(ValueError):
            calibrate_block_reduce_rate(p100, lambda s: 0.5, target_share=0.5, lo=0)
