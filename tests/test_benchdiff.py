"""Bench envelope and the noise-aware regression differ."""

import json

import pytest

from repro.cli import main
from repro.obs.benchdiff import (
    ENVELOPE_VERSION,
    bench_envelope,
    classify_metric,
    diff_envelopes,
    diff_payloads,
    flatten_numeric,
    format_diff,
    load_envelope,
)


class TestEnvelope:
    def test_envelope_shape_and_provenance(self):
        env = bench_envelope("fig6", {"qps": 10.0}, kind="summary", scenario="fig6/a")
        assert env["schema_version"] == ENVELOPE_VERSION
        assert env["benchmark"] == "fig6"
        assert env["kind"] == "summary"
        assert env["payload"] == {"qps": 10.0}
        run = env["run"]
        assert run["scenario"] == "fig6/a"
        assert len(run["run_id"]) == 12
        assert run["git_sha"]
        assert "T" in run["timestamp"]

    def test_run_ids_are_unique(self):
        a = bench_envelope("x", {})
        b = bench_envelope("x", {})
        assert a["run"]["run_id"] != b["run"]["run_id"]

    def test_load_envelope_tolerates_v1_artifacts(self, tmp_path):
        p = tmp_path / "BENCH_old.json"
        p.write_text(json.dumps({"benchmark": "x", "payload": {"qps": 1.0}}))
        env = load_envelope(p)
        assert env["run"] == {}
        p.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_envelope(p)


class TestFlattenAndClassify:
    def test_flatten_nested_payload(self):
        flat = flatten_numeric(
            {
                "a": {"b": 1.5, "list": [1, 2]},
                "skip_bool": True,
                "skip_str": "x",
                "skip_none": None,
                "nan": float("nan"),
                "run": {"timestamp": 123},
            }
        )
        assert flat == {"a.b": 1.5, "a.list.0": 1.0, "a.list.1": 2.0}

    def test_classification_precedence(self):
        # Informational tokens win even when a gating token also matches:
        # conversion *time* is host wall clock, never a gate.
        assert classify_metric("conversions.0.total_s.time") == "info"
        assert classify_metric("config.max_wait") == "info"
        assert classify_metric("latency_s.p95") == "lower"
        assert classify_metric("queue_wait_s.p99") == "lower"
        assert classify_metric("achieved_qps") == "higher"
        assert classify_metric("speedup.Higgs") == "higher"
        assert classify_metric("some_unknown_metric") == "info"


class TestDiff:
    def test_identical_payloads_diff_clean(self):
        payload = {"latency_s": {"p95": 0.004}, "achieved_qps": 1900.0}
        diff = diff_payloads(payload, json.loads(json.dumps(payload)))
        assert diff.ok and diff.compared == 2
        assert not diff.regressions and not diff.improvements

    def test_injected_latency_regression_detected(self):
        old = {"latency_s": {"p95": 0.004, "p50": 0.001}, "achieved_qps": 1900.0}
        new = {"latency_s": {"p95": 0.004 * 1.2, "p50": 0.001}, "achieved_qps": 1900.0}
        diff = diff_payloads(old, new)
        assert not diff.ok
        (reg,) = diff.regressions
        assert reg.path == "latency_s.p95"
        assert reg.rel_change == pytest.approx(0.2)

    def test_throughput_drop_is_regression_and_rise_improvement(self):
        old = {"achieved_qps": 1000.0}
        assert not diff_payloads(old, {"achieved_qps": 700.0}).ok
        diff = diff_payloads(old, {"achieved_qps": 1500.0})
        assert diff.ok and len(diff.improvements) == 1

    def test_noise_within_threshold_ignored(self):
        old = {"latency_s": {"p95": 0.004}}
        new = {"latency_s": {"p95": 0.004 * 1.09}}
        assert diff_payloads(old, new, rel_threshold=0.10).ok
        assert not diff_payloads(old, new, rel_threshold=0.05).ok

    def test_abs_floor_swallows_float_jitter(self):
        diff = diff_payloads({"error_rate": 0.0}, {"error_rate": 1e-12})
        assert diff.ok and not diff.info_changes

    def test_info_metrics_never_gate(self):
        old = {"conversion_total_s": 1.0, "offered_qps": 2000.0}
        new = {"conversion_total_s": 5.0, "offered_qps": 4000.0}
        diff = diff_payloads(old, new)
        assert diff.ok
        assert len(diff.info_changes) == 2

    def test_added_and_removed_tracked(self):
        diff = diff_payloads({"a": 1.0}, {"b": 2.0})
        assert diff.added == ["b"] and diff.removed == ["a"]
        assert diff.compared == 0 and diff.ok

    def test_scenario_mismatch_warns_but_does_not_fail(self):
        old = bench_envelope("serving", {"x": 1.0}, scenario="serving/a")
        new = bench_envelope("serving", {"x": 1.0}, scenario="serving/b")
        diff = diff_envelopes(old, new)
        assert diff.ok
        assert diff.scenario_mismatch == ("serving/a", "serving/b")
        assert "WARNING" in format_diff(diff)

    def test_cross_time_domain_refused(self):
        old = bench_envelope(
            "serving", {"time_domain": "simulated", "qps": 100.0}, scenario="s"
        )
        new = bench_envelope(
            "serving", {"time_domain": "wall", "qps": 900.0}, scenario="s"
        )
        with pytest.raises(ValueError, match="refusing to diff across time domains"):
            diff_envelopes(old, new)

    def test_same_time_domain_diffs_normally(self):
        old = bench_envelope("b", {"time_domain": "wall", "qps": 100.0}, scenario="s")
        new = bench_envelope("b", {"time_domain": "wall", "qps": 101.0}, scenario="s")
        assert diff_envelopes(old, new).ok

    def test_missing_time_domain_tolerated(self):
        # Pre-native artifacts carry no domain marker; they diff as before.
        old = bench_envelope("b", {"qps": 100.0}, scenario="s")
        new = bench_envelope("b", {"time_domain": "wall", "qps": 100.0}, scenario="s")
        assert diff_envelopes(old, new).ok

    def test_format_diff_verdict_line(self):
        clean = diff_payloads({"a": 1.0}, {"a": 1.0})
        assert format_diff(clean).endswith("RESULT: clean")
        bad = diff_payloads({"latency": 1.0}, {"latency": 2.0})
        out = format_diff(bad)
        assert out.endswith("RESULT: REGRESSION")
        assert "latency: 1 -> 2" in out


class TestCli:
    def _write(self, path, payload, scenario="s"):
        path.write_text(json.dumps(bench_envelope("t", payload, scenario=scenario)))
        return path

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"latency_s": {"p95": 0.004}})
        new = self._write(tmp_path / "new.json", {"latency_s": {"p95": 0.004}})
        assert main(["bench", "diff", str(old), str(new)]) == 0
        assert "RESULT: clean" in capsys.readouterr().out

    def test_regression_exits_nonzero_unless_warn_only(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"latency_s": {"p95": 0.004}})
        new = self._write(tmp_path / "new.json", {"latency_s": {"p95": 0.0048}})
        assert main(["bench", "diff", str(old), str(new)]) == 1
        assert "RESULT: REGRESSION" in capsys.readouterr().out
        assert main(["bench", "diff", "--warn-only", str(old), str(new)]) == 0

    def test_threshold_flag_loosens_gate(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"latency_s": {"p95": 0.004}})
        new = self._write(tmp_path / "new.json", {"latency_s": {"p95": 0.0048}})
        assert main(["bench", "diff", "--threshold", "0.25", str(old), str(new)]) == 0

    def test_json_output_mode(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"qps": 100.0})
        new = self._write(tmp_path / "new.json", {"qps": 50.0})
        assert main(["bench", "diff", "--json", str(old), str(new)]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["regressions"][0]["path"] == "qps"

    def test_unreadable_artifact_exits_two(self, tmp_path, capsys):
        good = self._write(tmp_path / "old.json", {"qps": 1.0})
        missing = tmp_path / "nope.json"
        assert main(["bench", "diff", str(good), str(missing)]) == 2

    def test_cross_domain_diff_exits_two_with_message(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json", {"time_domain": "simulated", "qps": 100.0}
        )
        new = self._write(
            tmp_path / "new.json", {"time_domain": "wall", "qps": 100.0}
        )
        assert main(["bench", "diff", str(old), str(new)]) == 2
        err = capsys.readouterr().err
        assert "refusing to diff across time domains" in err
