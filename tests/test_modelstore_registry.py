"""ModelRegistry: version numbering, the atomic active pointer, and the
swap event log."""

import json

import pytest

from repro.modelstore import ModelRegistry, ModelVersion, load_packed, pack_forest


class TestRegistration:
    def test_versions_are_monotonic_per_name(self, small_forest, small_gbdt):
        reg = ModelRegistry()
        v1 = reg.register(forest=small_forest)
        v2 = reg.register(forest=small_gbdt)
        other = reg.register(name="other", forest=small_forest)
        assert (v1.version, v2.version) == (1, 2)
        assert other.version == 1
        assert reg.names() == ["default", "other"]
        assert [mv.label for mv in reg.versions()] == ["default@v1", "default@v2"]

    def test_first_version_auto_activates(self, small_forest):
        reg = ModelRegistry()
        mv = reg.register(forest=small_forest)
        assert reg.active().version == mv.version
        assert reg.get() is mv

    def test_later_versions_do_not_steal_the_pointer(self, small_forest, small_gbdt):
        reg = ModelRegistry()
        reg.register(forest=small_forest)
        reg.register(forest=small_gbdt)
        assert reg.active().version == 1

    def test_exactly_one_source_required(self, small_forest, p100, tmp_path):
        reg = ModelRegistry()
        packed = pack_forest(small_forest, p100, tmp_path / "m.tahoe")
        with pytest.raises(ValueError, match="exactly one"):
            reg.register(forest=small_forest, packed=packed)
        with pytest.raises(ValueError, match="exactly one"):
            reg.register()

    def test_packed_registration_carries_layout_and_key(
        self, small_forest, p100, tmp_path
    ):
        reg = ModelRegistry()
        packed = load_packed(pack_forest(small_forest, p100, tmp_path / "m.tahoe").path)
        mv = reg.register(packed=packed, at_time=1.5)
        assert mv.source == "artifact"
        assert mv.layout is packed.layout
        assert mv.cache_key == packed.cache_key
        assert mv.forest is None
        assert mv.registered_at == 1.5
        assert mv.n_trees == small_forest.n_trees

    def test_version_needs_forest_or_layout(self):
        with pytest.raises(ValueError, match="forest or a layout"):
            ModelVersion(name="x", version=1)


class TestActivePointer:
    def test_activate_moves_pointer_and_logs_event(self, small_forest, small_gbdt):
        reg = ModelRegistry()
        reg.register(forest=small_forest)
        reg.register(forest=small_gbdt)
        event = reg.activate(version=2, at_time=3.25)
        assert reg.active().version == 2
        assert event["from_version"] == 1
        assert event["to_version"] == 2
        assert event["to_label"] == "default@v2"
        assert event["time"] == 3.25
        assert reg.events == [event]

    def test_activate_defaults_to_latest_lookup_by_none(self, small_forest):
        reg = ModelRegistry()
        reg.register(forest=small_forest)
        # version=None resolves to the currently active version (a no-op
        # re-activation) and still records the event.
        event = reg.activate()
        assert event["from_version"] == event["to_version"] == 1

    def test_rollback_is_just_another_activate(self, small_forest, small_gbdt):
        reg = ModelRegistry()
        reg.register(forest=small_forest)
        reg.register(forest=small_gbdt)
        reg.activate(version=2)
        reg.activate(version=1, at_time=9.0)
        assert reg.active().version == 1
        assert [e["to_version"] for e in reg.events] == [2, 1]

    def test_unknown_name_and_version_raise(self, small_forest):
        reg = ModelRegistry()
        reg.register(forest=small_forest)
        with pytest.raises(KeyError, match="ghost"):
            reg.get("ghost")
        with pytest.raises(KeyError, match="version 7"):
            reg.activate(version=7)
        assert reg.active("ghost") is None


class TestSummary:
    def test_summary_is_json_ready(self, small_forest, small_gbdt, p100, tmp_path):
        reg = ModelRegistry()
        reg.register(forest=small_forest)
        packed = pack_forest(small_gbdt, p100, tmp_path / "g.tahoe")
        reg.register(packed=packed, at_time=2.0)
        reg.activate(version=2, at_time=2.5)
        summary = json.loads(json.dumps(reg.summary()))
        model = summary["models"]["default"]
        assert model["active"] == 2
        assert [v["label"] for v in model["versions"]] == ["default@v1", "default@v2"]
        assert model["versions"][1]["preconverted"] is True
        assert summary["swap_events"][0]["to_label"] == "default@v2"
