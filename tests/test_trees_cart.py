"""Tests for the histogram CART builder."""

import numpy as np
import pytest

from repro.trees.cart import CartConfig, bin_features, build_tree


def _xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2)).astype(np.float32)
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.float64)
    return X, y


class TestBinFeatures:
    def test_codes_within_range(self):
        X = np.random.default_rng(0).standard_normal((100, 3)).astype(np.float32)
        binned = bin_features(X, n_bins=16)
        assert binned.codes.max() < 16
        assert binned.codes.shape == (100, 3)

    def test_bin_edge_consistency(self):
        """bin(x) <= b must be equivalent to x < upper_edges[b]."""
        X = np.random.default_rng(1).standard_normal((500, 2)).astype(np.float32)
        binned = bin_features(X, n_bins=8)
        for f in range(2):
            for b in range(7):
                edge = binned.upper_edges[f, b]
                if not np.isfinite(edge):
                    continue
                lhs = binned.codes[:, f] <= b
                rhs = X[:, f] < edge
                np.testing.assert_array_equal(lhs, rhs)

    def test_constant_column(self):
        X = np.ones((50, 1), dtype=np.float32)
        binned = bin_features(X, n_bins=8)
        assert len(np.unique(binned.codes)) == 1


class TestCartConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CartConfig(max_depth=-1)
        with pytest.raises(ValueError):
            CartConfig(min_samples_leaf=0)
        with pytest.raises(ValueError):
            CartConfig(n_bins=1)
        with pytest.raises(ValueError):
            CartConfig(feature_fraction=0.0)


class TestBuildTree:
    def test_fits_and_function(self):
        """An AND of two thresholds is exactly representable at depth 2."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(600, 2)).astype(np.float32)
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(np.float64)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=2))
        pred = tree.predict(X) > 0.5
        assert (pred == y.astype(bool)).mean() > 0.95

    def test_fits_xor_with_depth(self):
        """XOR defeats the greedy first split (zero gain), but extra depth
        lets the builder recover the structure."""
        X, y = _xor_data(n=2000, seed=1)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=6))
        pred = tree.predict(X) > 0.5
        assert (pred == y.astype(bool)).mean() > 0.9

    def test_depth_zero_gives_single_leaf(self):
        X, y = _xor_data()
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=0))
        assert tree.n_nodes == 1
        assert tree.value[0] == pytest.approx(y.mean(), abs=1e-6)

    def test_respects_max_depth(self):
        X, y = _xor_data(n=2000, seed=3)
        for depth in (1, 2, 4):
            tree = build_tree(bin_features(X), y, CartConfig(max_depth=depth))
            assert tree.depth() <= depth

    def test_respects_min_samples_leaf(self):
        X, y = _xor_data(n=300)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=8, min_samples_leaf=30))
        leaf_counts = tree.visit_count[tree.is_leaf]
        assert leaf_counts.min() >= 30

    def test_visit_counts_conserved(self):
        """Children's visit counts must sum to the parent's."""
        X, y = _xor_data(n=500, seed=4)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=5))
        for node in range(tree.n_nodes):
            if not tree.is_leaf[node]:
                total = tree.visit_count[tree.left[node]] + tree.visit_count[tree.right[node]]
                assert total == tree.visit_count[node]

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).standard_normal((100, 3)).astype(np.float32)
        y = np.full(100, 3.25)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=4))
        assert tree.n_nodes == 1

    def test_default_direction_follows_majority(self):
        X, y = _xor_data(n=500, seed=6)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=4))
        for node in range(tree.n_nodes):
            if tree.is_leaf[node]:
                continue
            n_l = tree.visit_count[tree.left[node]]
            n_r = tree.visit_count[tree.right[node]]
            assert tree.default_left[node] == (n_l >= n_r)

    def test_feature_fraction_requires_rng(self):
        X, y = _xor_data()
        with pytest.raises(ValueError, match="rng"):
            build_tree(bin_features(X), y, CartConfig(feature_fraction=0.5))

    def test_sample_indices_subset(self):
        X, y = _xor_data(n=400)
        idx = np.arange(100)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=3), sample_indices=idx)
        assert tree.visit_count[0] == 100

    def test_deterministic(self):
        X, y = _xor_data(n=400, seed=8)
        binned = bin_features(X)
        a = build_tree(binned, y, CartConfig(max_depth=4))
        b = build_tree(binned, y, CartConfig(max_depth=4))
        np.testing.assert_array_equal(a.feature, b.feature)
        np.testing.assert_array_equal(a.threshold, b.threshold)

    def test_tree_validates(self):
        X, y = _xor_data(n=600, seed=9)
        tree = build_tree(bin_features(X), y, CartConfig(max_depth=6))
        tree.validate()  # must not raise

    def test_training_reduces_mse(self):
        X, y = _xor_data(n=800, seed=10)
        binned = bin_features(X)
        shallow = build_tree(binned, y, CartConfig(max_depth=1))
        deep = build_tree(binned, y, CartConfig(max_depth=4))
        mse_shallow = ((shallow.predict(X) - y) ** 2).mean()
        mse_deep = ((deep.predict(X) - y) ** 2).mean()
        assert mse_deep < mse_shallow
