"""Tests for tokenisation and SimHash."""

import numpy as np
import pytest

from repro.hashing.simhash import (
    normalize_checksum,
    simhash_checksum,
    token_bits,
    tokenize_tree,
)
from repro.trees.tree import DecisionTree


class TestTokenize:
    def test_manual_tree_token_count(self, manual_tree):
        """With t_nodes=2 the figure-3 scheme yields one token per edge."""
        tokens = tokenize_tree(manual_tree, t_nodes=2)
        # 6 edges, all distinct position pairs.
        assert len(tokens) == 6

    def test_tokens_deduplicated(self, manual_tree):
        tokens = tokenize_tree(manual_tree, t_nodes=2)
        contents = [t.content for t in tokens]
        assert len(contents) == len(set(contents))

    def test_weights_are_node_probabilities(self, manual_tree):
        tokens = tokenize_tree(manual_tree, t_nodes=2)
        probs = manual_tree.node_probabilities()
        weights = sorted(t.weight for t in tokens)
        # Token weights must be drawn from the node-probability values.
        for w in weights:
            assert any(abs(w - p) < 1e-12 for p in probs)

    def test_identical_shapes_identical_tokens(self, manual_tree):
        other = manual_tree.copy()
        other.feature[0] = 1  # different attribute, same shape
        a = {t.content for t in tokenize_tree(manual_tree)}
        b = {t.content for t in tokenize_tree(other)}
        assert a == b

    def test_include_features_distinguishes_attributes(self, manual_tree):
        other = manual_tree.copy()
        other.feature[0] = 1
        a = {t.content for t in tokenize_tree(manual_tree, include_features=True)}
        b = {t.content for t in tokenize_tree(other, include_features=True)}
        assert a != b

    def test_different_shapes_different_tokens(self, manual_tree):
        leaf = DecisionTree.single_leaf(1.0)
        a = {t.content for t in tokenize_tree(manual_tree)}
        b = {t.content for t in tokenize_tree(leaf)}
        assert a != b

    def test_rejects_small_t_nodes(self, manual_tree):
        with pytest.raises(ValueError):
            tokenize_tree(manual_tree, t_nodes=1)

    def test_single_leaf_one_token(self):
        tokens = tokenize_tree(DecisionTree.single_leaf(0.0))
        assert len(tokens) == 1


class TestTokenBits:
    def test_deterministic(self):
        a = token_bits(b"1|2", 128)
        b = token_bits(b"1|2", 128)
        np.testing.assert_array_equal(a, b)

    def test_length_and_alphabet(self):
        bits = token_bits(b"x", 200)
        assert bits.shape == (200,)
        assert set(np.unique(bits)) <= {0, 1}

    def test_different_content_different_bits(self):
        assert not np.array_equal(token_bits(b"a", 128), token_bits(b"b", 128))

    def test_expansion_beyond_sha1(self):
        """Lengths beyond 160 bits come from counter-mode expansion and
        must not repeat the first block."""
        bits = token_bits(b"z", 320)
        assert not np.array_equal(bits[:160], bits[160:320])

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            token_bits(b"a", 0)


class TestSimhashChecksum:
    def test_length(self, manual_tree):
        assert simhash_checksum(manual_tree, l_hash=64).shape == (64,)

    def test_deterministic(self, manual_tree):
        a = simhash_checksum(manual_tree)
        b = simhash_checksum(manual_tree)
        np.testing.assert_array_equal(a, b)

    def test_identical_trees_identical_checksums(self, manual_tree):
        np.testing.assert_array_equal(
            simhash_checksum(manual_tree), simhash_checksum(manual_tree.copy())
        )

    def test_similar_trees_closer_than_dissimilar(self, small_forest):
        """SimHash's core property, asserted statistically: trees of
        similar size average a smaller Hamming distance than trees of
        very different size."""
        trees = sorted(small_forest.trees, key=lambda t: t.n_nodes)
        sigs = [normalize_checksum(simhash_checksum(t)) for t in trees]
        sizes = np.array([t.n_nodes for t in trees])
        n = len(trees)
        similar, dissimilar = [], []
        for i in range(n):
            for j in range(i + 1, n):
                d = int((sigs[i] != sigs[j]).sum())
                ratio = sizes[j] / max(sizes[i], 1)
                if ratio < 1.3:
                    similar.append(d)
                elif ratio > 2.5:
                    dissimilar.append(d)
        assert similar and dissimilar
        assert np.mean(similar) < np.mean(dissimilar)


class TestNormalize:
    def test_zero_maps_to_one(self):
        np.testing.assert_array_equal(
            normalize_checksum(np.array([-0.5, 0.0, 0.5])), [0, 1, 1]
        )

    def test_output_dtype(self):
        assert normalize_checksum(np.array([1.0, -1.0])).dtype == np.uint8
