"""Tests for the adaptive forest format and tree rearrangement."""

import numpy as np
import pytest

from repro.formats import (
    build_adaptive_layout,
    build_reorg_layout,
    round_robin_assignment,
    similarity_tree_order,
)


class TestSimilarityTreeOrder:
    def test_permutation(self, small_forest):
        order = similarity_tree_order(small_forest)
        assert sorted(order) == list(range(small_forest.n_trees))

    def test_pairwise_method(self, small_forest):
        order = similarity_tree_order(small_forest, method="pairwise")
        assert sorted(order) == list(range(small_forest.n_trees))

    def test_unknown_method_rejected(self, small_forest):
        with pytest.raises(ValueError):
            similarity_tree_order(small_forest, method="magic")

    def test_order_groups_similar_sizes(self, small_forest):
        """Neighbouring trees in the order should be closer in size than
        random neighbours, on average.  Ordering happens after node
        rearrangement (as in the real pipeline), which canonicalises hot
        paths and makes same-shape trees hash alike."""
        from repro.formats import rearrange_forest_nodes

        rearranged = rearrange_forest_nodes(small_forest)
        order = similarity_tree_order(rearranged)
        sizes = np.array([t.n_nodes for t in rearranged.trees], dtype=np.float64)
        ordered = sizes[order]
        adjacent = np.abs(np.diff(ordered)).mean()
        rng = np.random.default_rng(0)
        random_means = []
        for _ in range(200):
            perm = rng.permutation(sizes)
            random_means.append(np.abs(np.diff(perm)).mean())
        assert adjacent <= np.mean(random_means)


class TestRoundRobin:
    def test_partition_complete(self):
        assignment = round_robin_assignment(10, 3)
        combined = sorted(np.concatenate(assignment).tolist())
        assert combined == list(range(10))

    def test_round_robin_pattern(self):
        assignment = round_robin_assignment(7, 3)
        np.testing.assert_array_equal(assignment[0], [0, 3, 6])
        np.testing.assert_array_equal(assignment[1], [1, 4])
        np.testing.assert_array_equal(assignment[2], [2, 5])

    def test_more_threads_than_trees(self):
        assignment = round_robin_assignment(2, 5)
        assert len(assignment) == 5
        assert assignment[3].size == 0

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            round_robin_assignment(5, 0)


class TestAdaptiveLayout:
    def test_predictions_preserved(self, small_forest, test_X):
        layout = build_adaptive_layout(small_forest)
        np.testing.assert_allclose(
            layout.forest.predict(test_X), small_forest.predict(test_X), rtol=1e-6
        )

    def test_variable_width_saves_space(self, small_forest):
        reorg = build_reorg_layout(small_forest)
        adaptive = build_adaptive_layout(small_forest)
        # letter: 6-byte records vs 9-byte (plus whatever slot compaction
        # node rearrangement buys) -> at least a third saved.
        assert adaptive.total_bytes <= reorg.total_bytes * 6 // 9

    def test_fixed_width_never_larger_than_reorg(self, small_forest):
        """Node rearrangement moves hot subtrees into low heap slots, so
        the truncated-dense allocation can only shrink or stay equal."""
        adaptive = build_adaptive_layout(small_forest, variable_width=False)
        reorg = build_reorg_layout(small_forest)
        assert adaptive.total_bytes <= reorg.total_bytes
        # Without node rearrangement the slot structure is identical.
        plain = build_adaptive_layout(
            small_forest, node_rearrangement=False, variable_width=False
        )
        assert plain.total_bytes == reorg.total_bytes

    def test_techniques_recorded(self, small_forest):
        layout = build_adaptive_layout(small_forest, tree_rearrangement=False)
        tech = layout.metadata["techniques"]
        assert tech["node_rearrangement"] is True
        assert tech["tree_rearrangement"] is False

    def test_disabled_tree_rearrangement_keeps_order(self, small_forest):
        layout = build_adaptive_layout(small_forest, tree_rearrangement=False)
        assert layout.tree_order == list(range(small_forest.n_trees))

    def test_node_rearrangement_sets_flips(self, small_forest):
        layout = build_adaptive_layout(small_forest)
        assert any(t.flip.any() for t in layout.forest.trees)

    def test_no_node_rearrangement_no_flips(self, small_forest):
        layout = build_adaptive_layout(small_forest, node_rearrangement=False)
        assert not any(t.flip.any() for t in layout.forest.trees)

    def test_single_tree_forest(self, small_forest):
        solo = small_forest.with_trees(small_forest.trees[:1])
        layout = build_adaptive_layout(solo)
        assert layout.n_trees == 1
