"""Tests for the SHAP explanation subsystem (``repro.explain``).

Two pillars pin correctness:

* The **efficiency axiom** — per-sample attributions plus the base value
  reconstruct the engine's raw margin exactly (float64 tolerance) — on
  hypothesis-generated random forests including NaN routing and
  threshold ties, through every engine path (simulated Tahoe and FIL,
  native numpy, native numba when present).
* A **differential test** against a brute-force exhaustive-subset
  Shapley reference on tiny forests (≤4 features, ≤3 trees), per class
  for multiclass — the kernel's polynomial-time recurrence must match
  the O(2^F) definition, not just sum correctly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FILEngine, TahoeEngine
from repro.core.native import HAVE_NUMBA, NativeEngine
from repro.explain import (
    brute_force_shapley,
    build_path_set,
    compute_shap,
    path_set_for_layout,
)
from repro.formats import build_adaptive_layout
from repro.gpusim.specs import GPU_SPECS
from repro.trees.forest import Forest
from repro.trees.tree import LEAF, DecisionTree

SPEC = GPU_SPECS["P100"]

#: Threshold grid shared with the sample generator so draws produce
#: exact ties (x == threshold) often.
_GRID = np.array([-1.0, -0.5, 0.0, 0.5, 1.0], dtype=np.float32)


def _grow_tree(rng, n_features, max_depth, group=0):
    feature, threshold, left, right = [], [], [], []
    value, default_left, visits = [], [], []

    def grow(depth, visit):
        node = len(feature)
        feature.append(LEAF)
        threshold.append(0.0)
        left.append(LEAF)
        right.append(LEAF)
        value.append(float(rng.standard_normal()))
        default_left.append(bool(rng.random() < 0.5))
        visits.append(int(visit))
        if depth < max_depth and visit >= 2 and rng.random() < 0.75:
            feature[node] = int(rng.integers(0, n_features))
            threshold[node] = float(rng.choice(_GRID))
            lv = int(rng.integers(1, visit))
            left[node] = grow(depth + 1, lv)
            right[node] = grow(depth + 1, visit - lv)
        return node

    grow(0, int(rng.integers(4, 500)))
    return DecisionTree(
        feature=np.array(feature, dtype=np.int32),
        threshold=np.array(threshold, dtype=np.float32),
        left=np.array(left, dtype=np.int32),
        right=np.array(right, dtype=np.int32),
        value=np.array(value, dtype=np.float32),
        default_left=np.array(default_left),
        visit_count=np.array(visits, dtype=np.int64),
        group=group,
    )


@st.composite
def random_forests(draw, max_trees=6, max_features=6, max_depth=4):
    """A random forest plus a sample block with NaNs and exact ties."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_features = draw(st.integers(1, max_features))
    n_classes = draw(st.sampled_from([1, 1, 2, 3]))
    n_trees = draw(st.integers(max(1, n_classes), max_trees))
    aggregation = draw(st.sampled_from(["sum", "mean"]))
    rng = np.random.default_rng(seed)
    trees = [
        _grow_tree(rng, n_features, max_depth, group=i % n_classes)
        for i in range(n_trees)
    ]
    forest = Forest(
        trees=trees,
        n_attributes=n_features,
        aggregation=aggregation,
        learning_rate=float(rng.uniform(0.1, 1.0)) if aggregation == "sum" else 1.0,
        base_score=float(rng.normal()) if aggregation == "sum" else 0.0,
        n_classes=n_classes,
    )
    n_samples = draw(st.integers(1, 12))
    # Draw from the threshold grid (ties), off-grid noise, and NaN.
    X = rng.choice(_GRID, size=(n_samples, n_features)).astype(np.float32)
    noise = rng.random((n_samples, n_features))
    X = np.where(noise < 0.3, rng.normal(size=X.shape).astype(np.float32), X)
    X[noise > 0.85] = np.nan
    return forest, X


def _check_efficiency(forest, X, attributions, base_values, predictions):
    raw = np.asarray(forest.raw_margin(X), dtype=np.float64)
    phi = np.asarray(attributions, dtype=np.float64)
    if phi.ndim == 2:
        raw = raw[:, 0] if raw.ndim == 2 else raw
    recon = np.asarray(base_values) + phi.sum(axis=1)
    np.testing.assert_allclose(recon, raw, rtol=1e-9, atol=1e-9)
    # The result's own predictions are the same margins.
    np.testing.assert_allclose(
        np.asarray(predictions, dtype=np.float64), raw, rtol=1e-9, atol=1e-9
    )


class TestEfficiencyAxiom:
    @given(random_forests())
    @settings(max_examples=40, deadline=None)
    def test_tahoe_engine(self, forest_X):
        forest, X = forest_X
        result = TahoeEngine(forest, SPEC).explain(X)
        _check_efficiency(
            forest, X, result.attributions, result.base_values, result.predictions
        )

    @given(random_forests())
    @settings(max_examples=15, deadline=None)
    def test_fil_engine(self, forest_X):
        forest, X = forest_X
        result = FILEngine(forest, SPEC).explain(X)
        _check_efficiency(
            forest, X, result.attributions, result.base_values, result.predictions
        )

    @given(random_forests())
    @settings(max_examples=15, deadline=None)
    def test_native_engine_numpy(self, forest_X):
        forest, X = forest_X
        result = NativeEngine(forest, SPEC, kernel="numpy").explain(X)
        assert result.time_domain == "wall"
        _check_efficiency(
            forest, X, result.attributions, result.base_values, result.predictions
        )

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_native_engine_numba(self):
        rng = np.random.default_rng(3)
        trees = [_grow_tree(rng, 5, 4) for _ in range(6)]
        forest = Forest(trees=trees, n_attributes=5, aggregation="mean")
        X = rng.normal(size=(20, 5)).astype(np.float32)
        X[2, 1] = np.nan
        result = NativeEngine(forest, SPEC, kernel="numba").explain(X)
        _check_efficiency(
            forest, X, result.attributions, result.base_values, result.predictions
        )


@st.composite
def tiny_forests(draw):
    """Forests small enough for the O(2^F · paths) reference."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_features = draw(st.integers(1, 4))
    n_classes = draw(st.sampled_from([1, 1, 2]))
    n_trees = draw(st.integers(max(1, n_classes), 3))
    aggregation = draw(st.sampled_from(["sum", "mean"]))
    rng = np.random.default_rng(seed)
    trees = [
        _grow_tree(rng, n_features, 3, group=i % n_classes) for i in range(n_trees)
    ]
    forest = Forest(
        trees=trees,
        n_attributes=n_features,
        aggregation=aggregation,
        learning_rate=float(rng.uniform(0.1, 1.0)) if aggregation == "sum" else 1.0,
        base_score=float(rng.normal()) if aggregation == "sum" else 0.0,
        n_classes=n_classes,
    )
    X = rng.choice(_GRID, size=(draw(st.integers(1, 4)), n_features)).astype(
        np.float32
    )
    if draw(st.booleans()):
        X[0, 0] = np.nan
    return forest, X


class TestBruteForceDifferential:
    @given(tiny_forests())
    @settings(max_examples=30, deadline=None)
    def test_kernel_matches_exhaustive_shapley(self, forest_X):
        forest, X = forest_X
        ps = build_path_set(forest)
        phi, base, _margins = compute_shap(ps, X)
        ref_phi, ref_base = brute_force_shapley(forest, X)
        np.testing.assert_allclose(phi, ref_phi, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(base, ref_base, rtol=1e-9, atol=1e-10)

    def test_multiclass_per_class_attributions(self):
        rng = np.random.default_rng(11)
        trees = [_grow_tree(rng, 3, 3, group=i % 2) for i in range(2)]
        forest = Forest(
            trees=trees,
            n_attributes=3,
            aggregation="sum",
            learning_rate=0.5,
            base_score=0.2,
            n_classes=2,
        )
        X = rng.choice(_GRID, size=(5, 3)).astype(np.float32)
        phi, base, _ = compute_shap(build_path_set(forest), X)
        ref_phi, ref_base = brute_force_shapley(forest, X)
        assert phi.shape == (5, 3, 2)
        for k in range(2):
            np.testing.assert_allclose(
                phi[:, :, k], ref_phi[:, :, k], rtol=1e-9, atol=1e-10
            )
        np.testing.assert_allclose(base, ref_base, rtol=1e-9, atol=1e-10)


class TestCategoricalExplain:
    def _cat_forest(self):
        # Root: categorical membership on feature 0 ({2, 5} of 8 codes);
        # left subtree splits numerically on feature 1.
        tree = DecisionTree(
            feature=np.array([0, 1, LEAF, LEAF, LEAF], dtype=np.int32),
            threshold=np.array([0.0, 0.5, 0.0, 0.0, 0.0], dtype=np.float32),
            left=np.array([1, 3, LEAF, LEAF, LEAF], dtype=np.int32),
            right=np.array([2, 4, LEAF, LEAF, LEAF], dtype=np.int32),
            value=np.array([0.0, 0.0, 0.3, -0.2, 0.7], dtype=np.float32),
            default_left=np.array([False, True, False, False, False]),
            visit_count=np.array([100, 60, 40, 35, 25], dtype=np.int64),
            cat_offset=np.array([0, -1, -1, -1, -1], dtype=np.int64),
            cat_count=np.array([1, 0, 0, 0, 0], dtype=np.int32),
            cat_bits=np.array([(1 << 2) | (1 << 5)], dtype=np.uint32),
        )
        return Forest(trees=[tree], n_attributes=2, aggregation="sum")

    def test_efficiency_with_bitset_nan_and_out_of_range(self):
        forest = self._cat_forest()
        X = np.array(
            [[2.0, 0.1], [2.0, 0.9], [5.0, 0.4], [3.0, 0.0],
             [np.nan, 0.0], [-4.0, 0.2], [999.0, 0.2]],
            dtype=np.float32,
        )
        result = TahoeEngine(forest, SPEC).explain(X)
        _check_efficiency(
            forest, X, result.attributions, result.base_values, result.predictions
        )

    def test_matches_brute_force(self):
        forest = self._cat_forest()
        X = np.array(
            [[2.0, 0.1], [5.0, 0.9], [3.0, 0.4], [np.nan, 0.0]], dtype=np.float32
        )
        phi, base, _ = compute_shap(build_path_set(forest), X)
        ref_phi, ref_base = brute_force_shapley(forest, X)
        np.testing.assert_allclose(phi, ref_phi, rtol=1e-9, atol=1e-10)
        np.testing.assert_allclose(base, ref_base, rtol=1e-9, atol=1e-10)


class TestStrategies:
    def test_shared_paths_matches_direct_bitwise(self, small_forest):
        from repro.strategies import ExplainDirectStrategy, ExplainSharedPathsStrategy

        layout = build_adaptive_layout(small_forest)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(32, small_forest.n_attributes)).astype(np.float32)
        rows = np.arange(32, dtype=np.int64)
        direct = ExplainDirectStrategy().run(layout, X, SPEC, sample_rows=rows)
        ps = path_set_for_layout(layout)
        if ps.image_bytes <= SPEC.shared_mem_per_block:
            shared = ExplainSharedPathsStrategy().run(
                layout, X, SPEC, sample_rows=rows
            )
            np.testing.assert_array_equal(direct.attributions, shared.attributions)
            np.testing.assert_array_equal(direct.predictions, shared.predictions)

    def test_rank_explain_strategies(self, small_forest):
        from repro.perfmodel import measure_hardware_parameters, rank_explain_strategies

        layout = build_adaptive_layout(small_forest)
        hw = measure_hardware_parameters(SPEC)
        choices = rank_explain_strategies(layout, 1000, SPEC, hw)
        assert [c.name for c in choices][0] in (
            "explain_direct",
            "explain_shared_paths",
        )
        assert choices[0].predicted_time < float("inf")
        assert choices == sorted(choices, key=lambda c: c.predicted_time)

    def test_engine_records_explain_decisions(self, small_forest):
        engine = TahoeEngine(small_forest, SPEC)
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, small_forest.n_attributes)).astype(np.float32)
        result = engine.explain(X, batch_size=20, report=True)
        assert len(result.batches) == 2
        assert all(
            s in ("explain_direct", "explain_shared_paths")
            for s in result.strategies_used
        )
        assert result.report is not None


class TestServingExplain:
    def test_mixed_kinds_batch_homogeneously(self, small_forest, p100, test_X):
        from repro.serving import InferenceRequest, SchedulerConfig, TahoeServer

        server = TahoeServer(
            small_forest,
            p100,
            scheduler=SchedulerConfig(n_engines=1, max_wait=1e-3, max_batch=256),
        )
        reqs = [
            InferenceRequest(
                request_id=i,
                X=test_X[i % test_X.shape[0]][None, :],
                arrival_time=i * 1e-5,
                kind="explain" if i % 3 == 0 else "predict",
            )
            for i in range(30)
        ]
        result = server.run(reqs)
        assert all(r.ok for r in result.responses)
        engine = TahoeEngine(small_forest, p100)
        for r in result.responses:
            x = test_X[r.request_id % test_X.shape[0]][None, :]
            if r.request_id % 3 == 0:
                assert r.attributions is not None
                single = engine.explain(x)
                np.testing.assert_array_equal(r.attributions, single.attributions)
                np.testing.assert_array_equal(r.predictions, single.predictions)
            else:
                assert r.attributions is None
                np.testing.assert_allclose(
                    r.predictions, small_forest.predict(x), rtol=1e-5
                )

    def test_unknown_kind_rejected(self, test_X):
        from repro.serving import InferenceRequest

        with pytest.raises(ValueError, match="unknown request kind"):
            InferenceRequest(
                request_id=0, X=test_X[0], arrival_time=0.0, kind="interpret"
            )

    def test_fleet_forest_mode_explains(self, small_forest, p100, test_X):
        from repro.serving import InferenceRequest, SchedulerConfig
        from repro.serving.fleet import TahoeRouter

        sched = SchedulerConfig(n_engines=1, max_wait=1e-3, max_batch=256)
        reqs = [
            InferenceRequest(
                request_id=i,
                X=test_X[i][None, :],
                arrival_time=i * 1e-5,
                kind="explain",
            )
            for i in range(8)
        ]
        router = TahoeRouter(
            small_forest, p100, n_shards=3, mode="forest", scheduler=sched
        )
        result = router.run(reqs)
        engine = TahoeEngine(small_forest, p100)
        assert len(result.responses) == 8
        for r in result.responses:
            assert r.ok
            single = engine.explain(test_X[r.request_id][None, :])
            np.testing.assert_allclose(
                r.attributions, single.attributions, rtol=1e-9, atol=1e-12
            )
            np.testing.assert_allclose(r.base_values, single.base_values, rtol=1e-9)
            np.testing.assert_allclose(
                r.predictions, single.predictions, rtol=1e-9, atol=1e-12
            )
            assert [s.stage for s in r.trace.spans][-1] == "grouped_reduction"


class TestPathSet:
    def test_counts_and_caching(self, small_forest):
        layout = build_adaptive_layout(small_forest)
        ps = path_set_for_layout(layout)
        assert ps is path_set_for_layout(layout)  # cached on the layout
        assert ps.n_paths == sum(
            int((t.feature == LEAF).sum()) for t in small_forest.trees
        )
        assert ps.n_edges >= ps.n_paths - small_forest.n_trees
        assert ps.image_bytes > 0

    def test_leaf_only_tree_contributes_base_only(self):
        stump = DecisionTree.single_leaf(1.5, visit_count=10)
        forest = Forest(trees=[stump], n_attributes=2, aggregation="sum")
        phi, base, margins = compute_shap(build_path_set(forest), np.zeros((3, 2), np.float32))
        np.testing.assert_allclose(phi, 0.0)
        np.testing.assert_allclose(margins[:, 0], 1.5)
