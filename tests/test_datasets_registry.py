"""Tests for the Table 2 dataset registry."""

import numpy as np
import pytest

from repro.datasets import DATASETS, DATASET_ORDER, load_dataset
from repro.datasets.registry import DatasetSpec


class TestRegistryContents:
    def test_fifteen_datasets(self):
        assert len(DATASETS) == 15
        assert len(DATASET_ORDER) == 15

    def test_order_matches_paper_ids(self):
        for i, name in enumerate(DATASET_ORDER, start=1):
            assert DATASETS[name].index == i

    def test_table2_spot_checks(self):
        """Spot-check values against the paper's Table 2."""
        higgs = DATASETS["Higgs"]
        assert (higgs.n_samples, higgs.n_attributes) == (250000, 28)
        assert (higgs.forest_type, higgs.n_trees, higgs.max_depth) == ("RF", 3000, 8)
        svhn = DATASETS["SVHN"]
        assert (svhn.n_samples, svhn.n_attributes) == (1000000, 3072)
        assert (svhn.forest_type, svhn.n_trees, svhn.max_depth) == ("GBDT", 218, 15)
        gisette = DATASETS["gisette"]
        assert gisette.max_depth == 20
        letter = DATASETS["letter"]
        assert (letter.n_samples, letter.n_attributes) == (15000, 16)

    def test_forest_types_partition(self):
        rf = {n for n, s in DATASETS.items() if s.forest_type == "RF"}
        gbdt = {n for n, s in DATASETS.items() if s.forest_type == "GBDT"}
        assert rf | gbdt == set(DATASET_ORDER)
        assert "allstate" in rf and "hepmass" in gbdt

    def test_regression_tasks(self):
        for name in ("allstate", "cup98", "year"):
            assert DATASETS[name].task == "regression"


class TestDatasetSpec:
    def test_scaled_samples_floor(self):
        spec = DatasetSpec("x", 1, 1000, 5, "RF", 10, 3)
        assert spec.scaled_samples(0.0001) == 200
        assert spec.scaled_samples(0.5) == 500

    def test_scaled_trees_cap(self):
        spec = DatasetSpec("x", 1, 1000, 5, "RF", 100, 3)
        assert spec.scaled_trees(None) == 100
        assert spec.scaled_trees(30) == 30
        assert spec.scaled_trees(500) == 100


class TestLoadDataset:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_scale_controls_rows(self):
        small = load_dataset("Higgs", scale=0.001, seed=0)
        big = load_dataset("Higgs", scale=0.004, seed=0)
        assert small.n_samples == 250
        assert big.n_samples == 1000

    def test_attribute_cap_applied(self):
        data = load_dataset("SVHN", scale=0.0005, seed=0)
        assert data.n_attributes == 512
        assert data.metadata["paper_attributes"] == 3072

    def test_narrow_datasets_keep_width(self):
        data = load_dataset("letter", scale=0.05, seed=0)
        assert data.n_attributes == 16

    def test_task_follows_spec(self):
        assert load_dataset("year", scale=0.001).task == "regression"
        assert load_dataset("SUSY", scale=0.001).task == "classification"

    def test_metadata_carries_forest_hyperparameters(self):
        data = load_dataset("aloi", scale=0.01, seed=2)
        assert data.metadata["n_trees"] == 2000
        assert data.metadata["max_depth"] == 6
        assert data.metadata["forest_type"] == "RF"

    def test_seed_isolation_between_datasets(self):
        a = load_dataset("SUSY", scale=0.001, seed=0)
        b = load_dataset("Higgs", scale=0.001, seed=0)
        n = min(a.n_samples, b.n_samples)
        k = min(a.n_attributes, b.n_attributes)
        assert not np.array_equal(a.X[:n, :k], b.X[:n, :k])

    def test_deterministic_per_seed(self):
        a = load_dataset("covtype", scale=0.001, seed=5)
        b = load_dataset("covtype", scale=0.001, seed=5)
        np.testing.assert_array_equal(a.X, b.X)
