"""Fleet report merging: per-target calibration folds (no double
counting), metric section aggregation, and record re-indexing."""

from __future__ import annotations

import pytest

from repro.obs.drift import CalibrationTracker
from repro.obs.fleet import (
    merge_calibration_summaries,
    merge_calibration_trackers,
    merge_run_reports,
)
from repro.obs.report import BatchRecord, RunReport, SelectorDecision


class _Decision:
    """Minimal stand-in for a closed SelectorDecision."""

    def __init__(self, chosen, predicted, simulated):
        self.chosen = chosen
        self.predicted_time = predicted
        self.simulated_time = simulated
        self.candidates = []


def _tracker(decisions) -> CalibrationTracker:
    tracker = CalibrationTracker(warn=False)
    for chosen, predicted, simulated in decisions:
        tracker.record(_Decision(chosen, predicted, simulated))
    return tracker


class TestTrackerMerge:
    def test_merge_equals_single_tracker_over_union(self):
        a = _tracker([("P100", 1.0, 1.1), ("P100", 2.0, 2.0)])
        b = _tracker([("P100", 1.0, 1.5), ("V100", 3.0, 3.1)])
        union = _tracker(
            [
                ("P100", 1.0, 1.1),
                ("P100", 2.0, 2.0),
                ("P100", 1.0, 1.5),
                ("V100", 3.0, 3.1),
            ]
        )
        merged = merge_calibration_trackers([a, b])
        assert merged.summary() == union.summary()
        # inputs are not mutated by the fold
        assert a.n_decisions == 2 and b.n_decisions == 2

    def test_none_trackers_are_skipped(self):
        merged = merge_calibration_trackers([None, _tracker([("P100", 1.0, 1.0)])])
        assert merged.n_decisions == 1


class TestSummaryMerge:
    def _summary(self, decisions):
        return _tracker(decisions).summary()

    def test_shared_target_not_double_counted(self):
        # the same hardware target appears on both shards: the merged
        # section must sum its n once per decision, not once per shard
        merged = merge_calibration_summaries(
            [
                self._summary([("P100", 1.0, 1.1), ("P100", 2.0, 2.2)]),
                self._summary([("P100", 4.0, 4.4)]),
            ]
        )
        assert merged["n_decisions"] == 3
        assert set(merged["per_strategy"]) == {"P100"}
        assert merged["per_strategy"]["P100"]["n"] == 3
        assert merged["quantiles_approximate"] is True

    def test_means_are_n_weighted(self):
        # shard A: 2 decisions at ratio 1.0; shard B: 1 decision at 0.5
        merged = merge_calibration_summaries(
            [
                self._summary([("P100", 1.0, 1.0), ("P100", 2.0, 2.0)]),
                self._summary([("P100", 1.0, 2.0)]),
            ]
        )
        row = merged["per_strategy"]["P100"]
        assert row["mean_ratio"] == pytest.approx((1.0 * 2 + 0.5 * 1) / 3)

    def test_fraction_recomputed_over_union_not_summed(self):
        a = self._summary([("P100", 1.0, 1.0)])
        b = self._summary([("V100", 1.0, 1.0)])
        # force disjoint at-risk bookkeeping through the serialised path
        a["per_strategy"]["P100"]["ranking_at_risk"] = 1
        a["per_strategy"]["P100"]["decisions_with_margin"] = 1
        b["per_strategy"]["V100"]["ranking_at_risk"] = 0
        b["per_strategy"]["V100"]["decisions_with_margin"] = 1
        merged = merge_calibration_summaries([a, b])
        # naive concatenation would report 1.0 (a's fraction) or 1.0+0.0
        assert merged["ranking_at_risk_fraction"] == pytest.approx(0.5)

    def test_drift_grade_needs_min_decisions(self):
        a = self._summary([("P100", 1.0, 1.0)])
        a["per_strategy"]["P100"]["ranking_at_risk"] = 1
        a["per_strategy"]["P100"]["decisions_with_margin"] = 1
        assert merge_calibration_summaries([a])["drifted"] is False
        assert merge_calibration_summaries([a], min_decisions=1)["drifted"] is True

    def test_empty_inputs(self):
        merged = merge_calibration_summaries([{}, None])
        assert merged["n_decisions"] == 0
        assert merged["drifted"] is False


class TestReportMerge:
    def _report(self, engine, n_batches, n_samples, total_time):
        report = RunReport(
            engine=engine, gpu="P100", n_samples=n_samples, total_time=total_time
        )
        for i in range(n_batches):
            report.batches.append(
                BatchRecord(index=i, strategy="s", batch_size=4, simulated_time=1e-3)
            )
            report.decisions.append(
                SelectorDecision(batch_index=i, batch_size=4, chosen="s")
            )
        report.metrics = {
            "counters": {"batches_total": n_batches},
            "gauges": {},
            "histograms": {"batch_time_seconds": {"count": n_batches, "sum": 1.0}},
        }
        report.calibration = _tracker(
            [("P100", 1.0, 1.0)] * n_batches
        ).summary()
        return report

    def test_indices_rebased_and_aggregates_summed(self):
        merged = merge_run_reports(
            [self._report("a", 3, 30, 2.0), self._report("b", 2, 20, 5.0)],
            mode="replicate",
        )
        assert merged.engine == "tahoe-fleet"
        assert merged.n_samples == 50
        assert merged.total_time == 5.0  # slowest shard, not the sum
        indices = [b.index for b in merged.batches]
        assert sorted(indices) == list(range(5))
        decision_targets = {d.batch_index for d in merged.decisions}
        assert decision_targets == set(indices)
        assert merged.metrics["counters"]["batches_total"] == 5
        assert merged.metrics["histograms"]["batch_time_seconds"]["count"] == 5
        assert merged.calibration["n_decisions"] == 5
        assert merged.meta["mode"] == "replicate"
        assert [s["engine"] for s in merged.meta["shards"]] == ["a", "b"]

    def test_round_trips_through_to_dict(self):
        merged = merge_run_reports([self._report("a", 2, 10, 1.0)])
        clone = RunReport.from_dict(merged.to_dict())
        assert clone.calibration["n_decisions"] == 2
        assert len(clone.batches) == 2

    def test_requires_at_least_one_report(self):
        with pytest.raises(ValueError):
            merge_run_reports([])
