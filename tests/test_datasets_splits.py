"""Tests for train/inference splitting."""

import numpy as np
import pytest

from repro.datasets import make_classification, train_test_split


class TestTrainTestSplit:
    def test_seventy_thirty_default(self):
        data = make_classification(1000, 5, seed=0)
        split = train_test_split(data, seed=0)
        assert split.n_train == 700
        assert split.n_test == 300

    def test_partition_is_exact(self):
        """Every row appears exactly once across the two parts."""
        data = make_classification(200, 4, seed=1)
        split = train_test_split(data, seed=1)
        combined = np.vstack([split.train.X, split.test.X])
        original = data.X[np.lexsort(data.X.T)]
        recombined = combined[np.lexsort(combined.T)]
        np.testing.assert_array_equal(original, recombined)

    def test_shuffles(self):
        data = make_classification(500, 4, seed=2)
        split = train_test_split(data, seed=2)
        assert not np.array_equal(split.train.X, data.X[:350])

    def test_deterministic_per_seed(self):
        data = make_classification(100, 4, seed=3)
        a = train_test_split(data, seed=9)
        b = train_test_split(data, seed=9)
        np.testing.assert_array_equal(a.train.X, b.train.X)

    def test_different_seed_different_split(self):
        data = make_classification(100, 4, seed=3)
        a = train_test_split(data, seed=1)
        b = train_test_split(data, seed=2)
        assert not np.array_equal(a.train.X, b.train.X)

    def test_custom_fraction(self):
        data = make_classification(100, 4, seed=3)
        split = train_test_split(data, train_fraction=0.9, seed=0)
        assert split.n_train == 90

    def test_rejects_degenerate_fraction(self):
        data = make_classification(100, 4, seed=3)
        for frac in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                train_test_split(data, train_fraction=frac)

    def test_rejects_empty_part(self):
        data = make_classification(2, 4, seed=3)
        with pytest.raises(ValueError, match="empty"):
            train_test_split(data, train_fraction=0.01)

    def test_labels_follow_rows(self):
        data = make_classification(300, 12, seed=4)
        # Sparse rare-indicator columns can duplicate rows; only rows with
        # a unique feature vector have a well-defined label to check.
        counts = {}
        for row in data.X:
            counts[tuple(row)] = counts.get(tuple(row), 0) + 1
        lookup = {
            tuple(row): label
            for row, label in zip(data.X, data.y)
            if counts[tuple(row)] == 1
        }
        split = train_test_split(data, seed=4)
        checked = 0
        for row, label in zip(split.test.X, split.test.y):
            if tuple(row) in lookup:
                assert lookup[tuple(row)] == label
                checked += 1
        assert checked > 10
