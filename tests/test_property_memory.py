"""Property-based tests for the coalescing model and hashing primitives.

The packed-key kernels (PR 2) are additionally checked against
brute-force per-row Python references on randomized address/mask
patterns — including all-inactive rows, same-word broadcasts and
straddling accesses — so the single-sort implementations can never
silently drift from the model they encode.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpusim.memory import bank_conflict_factor, transactions_per_row
from repro.hashing.rabin_karp import rabin_karp
from repro.hashing.simhash import token_bits

addr_arrays = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 32)),
    elements=st.integers(0, 1 << 20),
)


def ref_transactions_per_row(addr, active, transaction_bytes=128, access_bytes=4):
    """Naive per-row reference for the coalescing model.

    Distinct start granules among active lanes, plus one extra granule
    per boundary an access straddles (the model's exact semantics).
    """
    tx, sectors, req = [], [], []
    for a_row, m_row in zip(addr, active):
        lanes = [int(a) for a, m in zip(a_row, m_row) if m]
        counts = []
        for granule in (transaction_bytes, 32):
            starts = {a // granule for a in lanes}
            straddle = sum(
                (a + access_bytes - 1) // granule - a // granule for a in lanes
            )
            counts.append(len(starts) + straddle)
        tx.append(counts[0])
        sectors.append(counts[1])
        req.append(len(lanes) * access_bytes)
    return np.array(tx), np.array(sectors), np.array(req)


def ref_bank_conflict_factor(addr, active, n_banks=32, bank_width=4):
    """Naive per-row reference: max multiplicity of distinct words per bank."""
    out = []
    for a_row, m_row in zip(addr, active):
        words = {int(a) // bank_width for a, m in zip(a_row, m_row) if m}
        if not words:
            out.append(0)
            continue
        out.append(max(Counter(w % n_banks for w in words).values()))
    return np.array(out)


@given(addr_arrays, st.data(), st.sampled_from([1, 4, 8, 9, 16]))
@settings(max_examples=80, deadline=None)
def test_transactions_match_reference(addr, data, access_bytes):
    active = data.draw(arrays(dtype=bool, shape=addr.shape, elements=st.booleans()))
    tx, sectors, req = transactions_per_row(addr, active, access_bytes=access_bytes)
    rtx, rsec, rreq = ref_transactions_per_row(addr, active, access_bytes=access_bytes)
    np.testing.assert_array_equal(tx, rtx)
    np.testing.assert_array_equal(sectors, rsec)
    np.testing.assert_array_equal(req, rreq)


@given(addr_arrays, st.data())
@settings(max_examples=80, deadline=None)
def test_bank_conflict_matches_reference(addr, data):
    active = data.draw(arrays(dtype=bool, shape=addr.shape, elements=st.booleans()))
    np.testing.assert_array_equal(
        bank_conflict_factor(addr, active), ref_bank_conflict_factor(addr, active)
    )


def test_bank_conflict_edge_cases():
    # All-inactive rows get factor 0; same-word lanes broadcast (factor 1);
    # same-bank different-word lanes serialise.
    addr = np.array(
        [
            [4, 4, 4, 4],  # same word -> broadcast
            [0, 128, 256, 384],  # bank 0, four distinct words
            [0, 4, 8, 12],  # four distinct banks
            [7, 7, 7, 7],  # inactive row
        ],
        dtype=np.int64,
    )
    active = np.ones_like(addr, dtype=bool)
    active[3] = False
    np.testing.assert_array_equal(bank_conflict_factor(addr, active), [1, 4, 1, 0])
    np.testing.assert_array_equal(
        bank_conflict_factor(addr, active), ref_bank_conflict_factor(addr, active)
    )


def test_bank_conflict_wide_span_fallback():
    # Word spread too wide for int64 key packing: the kernel must fall
    # back to lexicographic dedup and still match the reference.
    big = np.int64(1) << 62
    addr = np.stack(
        [np.array([0, 4, big, big + 4, big + 128, 0, 4, 128], dtype=np.int64)] * 64
    )
    active = np.ones_like(addr, dtype=bool)
    result = bank_conflict_factor(addr, active)
    np.testing.assert_array_equal(result, ref_bank_conflict_factor(addr, active))


def test_transactions_straddling_and_broadcast_edges():
    addr = np.array(
        [
            [126, 126, 126, 126],  # same straddling access in every lane
            [0, 32, 64, 96],  # four sectors, one transaction
            [0, 0, 0, 0],  # broadcast
            [120, 130, 250, 260],  # mixed boundaries
        ],
        dtype=np.int64,
    )
    active = np.ones_like(addr, dtype=bool)
    for access_bytes in (1, 4, 8, 9):
        tx, sectors, req = transactions_per_row(addr, active, access_bytes=access_bytes)
        rtx, rsec, rreq = ref_transactions_per_row(
            addr, active, access_bytes=access_bytes
        )
        np.testing.assert_array_equal(tx, rtx)
        np.testing.assert_array_equal(sectors, rsec)
        np.testing.assert_array_equal(req, rreq)


@given(addr_arrays, st.data())
@settings(max_examples=80, deadline=None)
def test_transactions_bounds(addr, data):
    """1 <= transactions <= active lanes (for non-straddling accesses),
    and exactly the number of distinct 128-byte segments."""
    active = data.draw(
        arrays(dtype=bool, shape=addr.shape, elements=st.booleans())
    )
    tx, sectors, req = transactions_per_row(addr, active, access_bytes=4)
    for i in range(addr.shape[0]):
        lanes = active[i].sum()
        segs = np.unique(addr[i][active[i]] // 128)
        secs = np.unique(addr[i][active[i]] // 32)
        extra = sum(
            1
            for a in addr[i][active[i]]
            if (a + 3) // 128 != a // 128
        )
        assert tx[i] >= len(segs)
        assert tx[i] <= len(segs) + extra
        assert sectors[i] >= len(secs)
        assert req[i] == lanes * 4
        if lanes == 0:
            assert tx[i] == 0 and sectors[i] == 0


@given(addr_arrays)
@settings(max_examples=50, deadline=None)
def test_transactions_permutation_invariant(addr):
    rng = np.random.default_rng(0)
    active = np.ones_like(addr, dtype=bool)
    tx1, _, _ = transactions_per_row(addr, active)
    perm = rng.permutation(addr.shape[1])
    tx2, _, _ = transactions_per_row(addr[:, perm], active)
    np.testing.assert_array_equal(np.sort(tx1), np.sort(tx2))


@given(addr_arrays)
@settings(max_examples=50, deadline=None)
def test_bank_conflict_bounds(addr):
    active = np.ones_like(addr, dtype=bool)
    factor = bank_conflict_factor(addr, active)
    assert np.all(factor >= 1)
    assert np.all(factor <= addr.shape[1])


@given(st.lists(st.integers(0, 255), max_size=64))
@settings(max_examples=60, deadline=None)
def test_rabin_karp_deterministic_and_bounded(symbols):
    a = rabin_karp(symbols)
    b = rabin_karp(list(symbols))
    assert a == b
    assert 0 <= a < 2_147_483_647


@given(st.binary(min_size=0, max_size=64), st.integers(1, 512))
@settings(max_examples=60, deadline=None)
def test_token_bits_shape_and_determinism(content, l_hash):
    bits = token_bits(content, l_hash)
    assert bits.shape == (l_hash,)
    assert set(np.unique(bits)) <= {0, 1}
    np.testing.assert_array_equal(bits, token_bits(content, l_hash))
