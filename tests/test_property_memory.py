"""Property-based tests for the coalescing model and hashing primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpusim.memory import bank_conflict_factor, transactions_per_row
from repro.hashing.rabin_karp import rabin_karp
from repro.hashing.simhash import token_bits

addr_arrays = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 32)),
    elements=st.integers(0, 1 << 20),
)


@given(addr_arrays, st.data())
@settings(max_examples=80, deadline=None)
def test_transactions_bounds(addr, data):
    """1 <= transactions <= active lanes (for non-straddling accesses),
    and exactly the number of distinct 128-byte segments."""
    active = data.draw(
        arrays(dtype=bool, shape=addr.shape, elements=st.booleans())
    )
    tx, sectors, req = transactions_per_row(addr, active, access_bytes=4)
    for i in range(addr.shape[0]):
        lanes = active[i].sum()
        segs = np.unique(addr[i][active[i]] // 128)
        secs = np.unique(addr[i][active[i]] // 32)
        extra = sum(
            1
            for a in addr[i][active[i]]
            if (a + 3) // 128 != a // 128
        )
        assert tx[i] >= len(segs)
        assert tx[i] <= len(segs) + extra
        assert sectors[i] >= len(secs)
        assert req[i] == lanes * 4
        if lanes == 0:
            assert tx[i] == 0 and sectors[i] == 0


@given(addr_arrays)
@settings(max_examples=50, deadline=None)
def test_transactions_permutation_invariant(addr):
    rng = np.random.default_rng(0)
    active = np.ones_like(addr, dtype=bool)
    tx1, _, _ = transactions_per_row(addr, active)
    perm = rng.permutation(addr.shape[1])
    tx2, _, _ = transactions_per_row(addr[:, perm], active)
    np.testing.assert_array_equal(np.sort(tx1), np.sort(tx2))


@given(addr_arrays)
@settings(max_examples=50, deadline=None)
def test_bank_conflict_bounds(addr):
    active = np.ones_like(addr, dtype=bool)
    factor = bank_conflict_factor(addr, active)
    assert np.all(factor >= 1)
    assert np.all(factor <= addr.shape[1])


@given(st.lists(st.integers(0, 255), max_size=64))
@settings(max_examples=60, deadline=None)
def test_rabin_karp_deterministic_and_bounded(symbols):
    a = rabin_karp(symbols)
    b = rabin_karp(list(symbols))
    assert a == b
    assert 0 <= a < 2_147_483_647


@given(st.binary(min_size=0, max_size=64), st.integers(1, 512))
@settings(max_examples=60, deadline=None)
def test_token_bits_shape_and_determinism(content, l_hash):
    bits = token_bits(content, l_hash)
    assert bits.shape == (l_hash,)
    assert set(np.unique(bits)) <= {0, 1}
    np.testing.assert_array_equal(bits, token_bits(content, l_hash))
