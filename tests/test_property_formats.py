"""Property-based tests: random forests through layouts and strategies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import build_adaptive_layout, build_reorg_layout
from repro.formats.partition import PartitionError, partition_trees
from repro.gpusim.specs import GPU_SPECS
from repro.strategies import DirectStrategy, SharedDataStrategy
from repro.trees.forest import Forest
from tests.test_property_trees import random_trees


@st.composite
def random_forests(draw):
    """A small random forest with consistent attribute width."""
    n_trees = draw(st.integers(2, 8))
    trees, widths, seed = [], [], 0
    for _ in range(n_trees):
        tree, n_features, s = draw(random_trees())
        trees.append(tree)
        widths.append(n_features)
        seed ^= s
    n_attributes = max(widths)
    forest = Forest(
        trees=trees,
        n_attributes=n_attributes,
        task="regression",
        aggregation="mean",
    )
    return forest, seed


@given(random_forests())
@settings(max_examples=25, deadline=None)
def test_layouts_preserve_predictions(forest_info):
    forest, seed = forest_info
    rng = np.random.default_rng(seed % (2**31))
    X = rng.standard_normal((40, forest.n_attributes)).astype(np.float32)
    reference = forest.predict(X)
    for layout in (build_reorg_layout(forest), build_adaptive_layout(forest)):
        np.testing.assert_allclose(layout.forest.predict(X), reference, rtol=1e-5)


@given(random_forests())
@settings(max_examples=25, deadline=None)
def test_layout_addresses_unique_and_bounded(forest_info):
    forest, _ = forest_info
    layout = build_adaptive_layout(forest)
    addr = np.concatenate(layout.node_address)
    assert len(np.unique(addr)) == len(addr)
    assert addr.min() >= 0
    assert addr.max() + layout.node_size <= layout.total_bytes


@given(random_forests())
@settings(max_examples=20, deadline=None)
def test_strategies_reproduce_reference(forest_info):
    forest, seed = forest_info
    rng = np.random.default_rng((seed + 1) % (2**31))
    X = rng.standard_normal((33, forest.n_attributes)).astype(np.float32)
    layout = build_adaptive_layout(forest)
    spec = GPU_SPECS["P100"]
    reference = forest.predict(X)
    for strategy in (SharedDataStrategy(), DirectStrategy()):
        result = strategy.run(layout, X, spec)
        np.testing.assert_allclose(result.predictions, reference, rtol=1e-5)
        assert result.time > 0


@given(random_forests(), st.integers(5, 14))
@settings(max_examples=25, deadline=None)
def test_partition_invariants(forest_info, capacity_pow):
    forest, _ = forest_info
    layout = build_adaptive_layout(forest)
    capacity = 2**capacity_pow
    try:
        parts = partition_trees(layout, capacity)
    except PartitionError:
        return  # a single tree legitimately exceeds the capacity
    flat = [p for part in parts for p in part]
    assert flat == list(range(layout.n_trees))
    assert all(len(p) >= 1 for p in parts)
