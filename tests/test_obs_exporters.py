"""Exporters: JSON round trips, Prometheus text, Chrome trace validity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.exporters import (
    chrome_trace_events,
    jsonable,
    load_report_json,
    metrics_to_prometheus,
    report_to_json,
    write_chrome_trace,
    write_report_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    SCHEMA_VERSION,
    BatchRecord,
    CandidateRecord,
    ConversionRecord,
    RunReport,
    SelectorDecision,
)
from repro.obs.trace import Tracer


def _sample_report() -> RunReport:
    return RunReport(
        engine="tahoe",
        gpu="Tesla P100",
        dataset="letter",
        n_samples=300,
        batch_size=100,
        total_time=0.012,
        conversions=[
            ConversionRecord(
                stages={"fetch_probabilities": 0.001, "copy_to_gpu": 0.002},
                total=0.003,
            )
        ],
        batches=[
            BatchRecord(
                index=0,
                strategy="shared_data",
                batch_size=100,
                simulated_time=0.004,
                n_blocks=3,
                threads_per_block=128,
                breakdown={"total": 0.004, "t_traversal": 0.003},
                traffic={"forest_global": {"requested_bytes": 64, "fetched_bytes": 128}},
            )
        ],
        decisions=[
            SelectorDecision(
                batch_index=0,
                batch_size=100,
                chosen="shared_data",
                predicted_time=0.0039,
                simulated_time=0.004,
                candidates=[
                    CandidateRecord("shared_data", 0.0039),
                    CandidateRecord("shared_forest", None, applicable=False, note="too big"),
                ],
            )
        ],
        metrics={"counters": {"batches_total": 1.0}},
        meta={"note": "fixture"},
    )


def test_report_json_round_trip_is_exact(tmp_path):
    report = _sample_report()
    path = write_report_json(report, tmp_path / "report.json")
    loaded = load_report_json(path)
    assert loaded.to_dict() == report.to_dict()
    # and the artifact really is strict JSON with the schema marker
    raw = json.loads(path.read_text())
    assert raw["schema_version"] == SCHEMA_VERSION


def test_report_json_has_no_infinity_literals():
    report = _sample_report()
    report.decisions[0].predicted_time = float("inf")
    text = report_to_json(report)
    assert "Infinity" not in text
    assert json.loads(text)["decisions"][0]["predicted_time"] is None


def test_from_dict_refuses_newer_schema():
    payload = _sample_report().to_dict()
    payload["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="newer"):
        RunReport.from_dict(payload)


def test_jsonable_coerces_numpy_inf_and_objects():
    value = {
        "i": np.int64(3),
        "f": np.float32(1.5),
        "arr": (np.float64(2.0), 1),
        "inf": float("inf"),
        "nan": float("nan"),
        "obj": object(),
        "ok": True,
    }
    out = jsonable(value)
    assert out["i"] == 3 and isinstance(out["i"], int)
    assert out["f"] == 1.5
    assert out["arr"] == [2, 1]
    assert out["inf"] is None and out["nan"] is None
    assert isinstance(out["obj"], str)
    assert out["ok"] is True
    json.dumps(out, allow_nan=False)  # must not raise


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("batches_total", help="batches executed").inc(3)
    reg.gauge("conversion_last_seconds").set(0.25)
    h = reg.histogram("selector.prediction_ratio")
    for v in (0.9, 1.0, 1.1):
        h.observe(v)
    text = metrics_to_prometheus(reg, prefix="repro")
    assert "# HELP repro_batches_total batches executed" in text
    assert "# TYPE repro_batches_total counter" in text
    assert "repro_batches_total 3" in text
    assert "# TYPE repro_conversion_last_seconds gauge" in text
    assert "repro_conversion_last_seconds 0.25" in text
    # dotted names are sanitised; histograms render as histogram series
    assert "# TYPE repro_selector_prediction_ratio histogram" in text
    assert 'repro_selector_prediction_ratio_bucket{le="+Inf"} 3' in text
    assert "repro_selector_prediction_ratio_sum 3" in text
    assert "repro_selector_prediction_ratio_count 3" in text
    assert text.endswith("\n")


def test_prometheus_histogram_buckets_are_cumulative_and_ordered():
    reg = MetricsRegistry()
    h = reg.histogram("lat", help="latency")
    for v in (0.001, 0.002, 0.002, 0.1):
        h.observe(v)
    text = metrics_to_prometheus(reg, prefix="repro")
    bucket_lines = [ln for ln in text.splitlines() if "_bucket{" in ln]
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
    assert counts == sorted(counts)  # cumulative
    assert counts[-1] == 4  # +Inf bucket equals count
    bounds = [
        float(ln.split('le="')[1].split('"')[0])
        for ln in bucket_lines
        if '+Inf' not in ln
    ]
    assert bounds == sorted(bounds)


def test_prometheus_help_escaping():
    reg = MetricsRegistry()
    reg.counter("x", help="line one\nback\\slash").inc()
    text = metrics_to_prometheus(reg, prefix="repro")
    assert "# HELP repro_x line one\\nback\\\\slash" in text


def test_chrome_trace_events_structure():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", category="conversion"):
        with tracer.span("inner", trees=np.int32(8)):
            pass
    events = chrome_trace_events(tracer, pid=7, tid=2, process_name="demo")
    meta, *spans = events
    assert meta["ph"] == "M" and meta["args"]["name"] == "demo"
    assert [e["name"] for e in spans] == ["inner", "outer"]
    for e in spans:
        assert e["ph"] == "X"
        assert e["pid"] == 7 and e["tid"] == 2
        assert e["ts"] >= 0 and e["dur"] >= 0
    inner, outer = spans
    assert inner["args"] == {"trees": 8}  # numpy arg coerced
    # time containment is what the viewer uses to nest spans
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3


def test_write_chrome_trace_is_loadable_json(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        pass
    path = write_chrome_trace(tracer, tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert isinstance(payload["traceEvents"], list)
    assert len(payload["traceEvents"]) == 2  # metadata + one span
