"""User-population workload model: arrival counts pinned to the analytic
intensity integral, Zipf skew, session structure, determinism."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import UserPopulationWorkload

X_POOL = np.random.default_rng(0).standard_normal((64, 8))


def _workload(**kwargs) -> UserPopulationWorkload:
    defaults = dict(X_pool=X_POOL, qps=2000.0, duration=0.5, n_users=200)
    defaults.update(kwargs)
    return UserPopulationWorkload(**defaults)


class TestIntensity:
    def test_expected_sessions_matches_numeric_integral(self):
        wl = _workload(diurnal_amplitude=0.7, flash_factor=5.0, flash_fraction=0.3)
        horizon = wl.duration
        t = np.linspace(0.0, horizon, 20001)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        numeric = trapezoid([wl.intensity(x, horizon) for x in t], t)
        assert wl.expected_sessions(horizon) == pytest.approx(numeric, rel=1e-4)

    def test_flat_model_reduces_to_poisson_rate(self):
        wl = _workload(diurnal_amplitude=0.0, flash_factor=1.0)
        # no diurnal swing, no flash crowd: request rate is exactly qps
        assert wl.expected_arrivals(wl.duration) == pytest.approx(
            wl.qps * wl.duration
        )

    @settings(max_examples=20, deadline=None)
    @given(
        qps=st.floats(500.0, 3000.0),
        amplitude=st.floats(0.0, 0.9),
        flash=st.floats(1.0, 8.0),
        mean=st.floats(1.0, 6.0),
        seed=st.integers(0, 2**16),
    )
    def test_realized_arrivals_track_the_intensity_integral(
        self, qps, amplitude, flash, mean, seed
    ):
        duration = 0.4
        wl = _workload(
            qps=qps,
            duration=duration,
            diurnal_amplitude=amplitude,
            flash_factor=flash,
            session_requests_mean=mean,
            session_gap_mean=1e-4,
            seed=seed,
        )
        requests = wl.arrivals(np.random.default_rng(seed), duration)
        expected = wl.expected_arrivals(duration)
        # compound Poisson: sessions ~ Poisson(lam), each geometric with
        # mean m, so Var[N] = lam * E[size^2] with E[size^2] = (2-p)/p^2
        lam = wl.expected_sessions(duration)
        p = 1.0 / mean
        sigma = math.sqrt(lam * (2.0 - p) / p**2)
        assert abs(len(requests) - expected) <= 5.0 * sigma + 10.0


class TestArrivalStructure:
    def test_deterministic_given_rng(self):
        wl = _workload(seed=3)
        a = wl.arrivals(np.random.default_rng(3), wl.duration)
        b = wl.arrivals(np.random.default_rng(3), wl.duration)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert [r.user for r in a] == [r.user for r in b]

    def test_sorted_with_monotone_ids_and_tagged_users(self):
        wl = _workload()
        requests = wl.arrivals(np.random.default_rng(1), wl.duration)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        assert all(0 <= r.user < wl.n_users for r in requests)
        assert all(0.0 <= t < wl.duration for t in times)

    def test_zipf_concentrates_traffic_on_heavy_users(self):
        wl = _workload(zipf_exponent=1.2, n_users=500, duration=1.0)
        requests = wl.arrivals(np.random.default_rng(5), wl.duration)
        counts = np.bincount([r.user for r in requests], minlength=wl.n_users)
        top_share = np.sort(counts)[::-1][:5].sum() / len(requests)
        # 1% of users carry far more than their uniform share (1%)
        assert top_share > 0.05

    def test_uniform_population_is_flat(self):
        wl = _workload(zipf_exponent=0.0, n_users=50, duration=1.0)
        requests = wl.arrivals(np.random.default_rng(5), wl.duration)
        counts = np.bincount([r.user for r in requests], minlength=wl.n_users)
        assert counts.max() < 5 * max(1, counts.mean())

    def test_flash_crowd_raises_arrivals_in_window(self):
        wl = _workload(
            flash_factor=8.0, flash_start=0.5, flash_fraction=0.2,
            diurnal_amplitude=0.0, duration=1.0, qps=4000.0,
        )
        requests = wl.arrivals(np.random.default_rng(2), wl.duration)
        times = np.array([r.arrival_time for r in requests])
        window = (times >= 0.5) & (times < 0.7)
        before = (times >= 0.2) & (times < 0.4)
        assert window.sum() > 3 * before.sum()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            _workload(n_users=0)
        with pytest.raises(ValueError):
            _workload(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            _workload(flash_factor=0.0)
        with pytest.raises(ValueError):
            _workload(session_requests_mean=0.5)
