"""Tests for work-balanced forest partitioning."""

import numpy as np
import pytest

from repro.formats import build_adaptive_layout
from repro.formats.layout import build_interleaved_layout
from repro.formats.partition import (
    PartitionError,
    cached_partition,
    partition_trees,
    tree_work,
)


@pytest.fixture(scope="module")
def layout(request):
    forest = request.getfixturevalue("small_forest")
    return build_adaptive_layout(forest)


class TestTreeWork:
    def test_expected_visits_bounds(self, layout):
        work = tree_work(layout)
        depths = layout.forest.tree_depths()
        # Expected walk length lies between 1 and depth+1.
        assert np.all(work >= 1.0)
        assert np.all(work <= depths + 1 + 1e-9)

    def test_cached(self, layout):
        assert tree_work(layout) is tree_work(layout)


class TestPartitionTrees:
    def test_single_part_when_fits(self, layout):
        parts = partition_trees(layout, layout.total_bytes + 1024)
        assert parts == [list(range(layout.n_trees))]

    def test_contiguous_in_layout_order(self, layout):
        parts = partition_trees(layout, 2048)
        flat = [p for part in parts for p in part]
        assert flat == list(range(layout.n_trees))

    def test_capacity_respected(self, layout):
        capacity = 2048
        for part in partition_trees(layout, capacity):
            sub = layout.forest.with_trees([layout.forest.trees[p] for p in part])
            sub_layout = build_interleaved_layout(sub, layout.record, None, "chk")
            assert sub_layout.total_bytes <= capacity

    def test_work_balanced_beats_bytes_only_packing(self, layout):
        """Max part work under the balanced cut must not exceed the
        one-pass bytes-greedy cut's."""
        from repro.formats.partition import _greedy, _slot_profiles

        capacity = 3072
        profiles = _slot_profiles(layout)
        bytes_only = _greedy(profiles, layout.node_size, capacity)
        balanced = partition_trees(layout, capacity)
        work = tree_work(layout)

        def max_work(parts):
            return max(float(work[p].sum()) for p in parts)

        assert max_work(balanced) <= max_work(bytes_only) + 1e-9

    def test_max_parts_respected_up_to_headroom(self, layout):
        parts = partition_trees(layout, 2048, max_parts=4)
        from repro.formats.partition import _greedy, _slot_profiles

        p_min = len(_greedy(_slot_profiles(layout), layout.node_size, 2048))
        assert len(parts) <= max(4, 2 * p_min)

    def test_oversized_tree_raises(self, layout):
        with pytest.raises(PartitionError):
            partition_trees(layout, 8)

    def test_cached_partition_memoised(self, layout):
        a = cached_partition(layout, 2048)
        b = cached_partition(layout, 2048)
        assert a is b
        c = cached_partition(layout, 4096)
        assert c is not a
