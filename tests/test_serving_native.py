"""Serving on the native backend: wall-clock pools behind the same
micro-batching scheduler."""

import numpy as np
import pytest

from repro.core import TIME_DOMAIN_SIMULATED, TIME_DOMAIN_WALL, LayoutCache
from repro.core.native import NativeEngine
from repro.modelstore import load_packed, pack_layout
from repro.serving import InferenceRequest, SchedulerConfig, TahoeServer


def make_server(forest, spec, **overrides):
    defaults = dict(n_engines=1, max_wait=1e-3, max_batch=256, backend="native")
    defaults.update(overrides)
    return TahoeServer(
        forest,
        spec,
        scheduler=SchedulerConfig(**defaults),
        layout_cache=LayoutCache(),
    )


def requests_from(X, n, *, spacing=1e-5):
    return [
        InferenceRequest(
            request_id=i,
            X=X[i % X.shape[0]][None, :],
            arrival_time=i * spacing,
        )
        for i in range(n)
    ]


class TestNativePool:
    def test_serves_bit_identical_to_simulator_pool(
        self, small_forest, p100, test_X
    ):
        reqs = requests_from(test_X, 50)
        native = make_server(small_forest, p100).run(requests_from(test_X, 50))
        tahoe = make_server(small_forest, p100, backend="tahoe").run(reqs)
        assert all(r.ok for r in native.responses)
        for rn, rt in zip(
            sorted(native.responses, key=lambda r: r.request_id),
            sorted(tahoe.responses, key=lambda r: r.request_id),
        ):
            assert np.array_equal(rn.predictions, rt.predictions)

    def test_summary_reports_backend_and_clock(self, small_forest, p100, test_X):
        result = make_server(small_forest, p100).run(requests_from(test_X, 30))
        assert result.summary["backend"] == "native"
        assert result.summary["time_domain"] == TIME_DOMAIN_WALL

    def test_simulated_summary_keeps_its_clock(self, small_forest, p100, test_X):
        server = make_server(small_forest, p100, backend="tahoe")
        result = server.run(requests_from(test_X, 30))
        assert result.summary["backend"] == "tahoe"
        assert result.summary["time_domain"] == TIME_DOMAIN_SIMULATED

    def test_engines_are_native(self, small_forest, p100):
        server = make_server(small_forest, p100, n_engines=2)
        assert all(isinstance(e, NativeEngine) for e in server.engines)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SchedulerConfig(backend="fpga")


class TestMeasuredFlushPoint:
    def test_flush_point_comes_from_measured_curve(self, small_forest, p100):
        server = make_server(small_forest, p100, max_batch=128)
        target = server.plan_flush_point()
        assert 1 <= target <= 128
        # Power-of-two candidate ladder, like the simulated planner's.
        assert target & (target - 1) == 0


class TestPackedNativePool:
    def test_packed_artifact_backs_native_pool(
        self, small_forest, p100, test_X, tmp_path
    ):
        reference = NativeEngine(small_forest, p100)
        path = tmp_path / "model.tahoe"
        pack_layout(
            reference.layout,
            path,
            engine="tahoe",
            spec_name=p100.name,
            conversion_key=reference.config.conversion_key(),
            source_fingerprint=small_forest.fingerprint(),
        )
        server = TahoeServer(
            packed=load_packed(path),
            spec=p100,
            scheduler=SchedulerConfig(
                n_engines=2, max_wait=1e-3, max_batch=128, backend="native"
            ),
            layout_cache=LayoutCache(),
        )
        result = server.run(requests_from(test_X, 40))
        assert all(r.ok for r in result.responses)
        expected = reference.predict(test_X[:1]).predictions
        first = min(result.responses, key=lambda r: r.request_id)
        assert np.array_equal(first.predictions, expected)
