"""Tests for the performance models, microbenchmarks, and selector."""

import dataclasses
import math

import numpy as np
import pytest

from repro.formats import build_adaptive_layout
from repro.perfmodel import (
    measure_hardware_parameters,
    predict_direct,
    predict_shared_data,
    predict_shared_forest,
    predict_splitting_shared_forest,
    rank_strategies,
    select_strategy,
    workload_params,
)
from repro.perfmodel.models import expected_imbalance


@pytest.fixture(scope="module")
def hw(request):
    p100 = request.getfixturevalue("p100")
    return measure_hardware_parameters(p100)


@pytest.fixture(scope="module")
def layout(request):
    forest = request.getfixturevalue("small_forest")
    return build_adaptive_layout(forest)


class TestMicrobench:
    def test_coalesced_faster_than_uncoalesced(self, hw):
        assert hw.bw_r_gmem_coa > hw.bw_r_gmem_ncoa

    def test_uncoalesced_ratio_matches_transaction_waste(self, hw):
        """Random 4-byte reads each fetch one 32-byte sector: 1/8 efficiency."""
        ratio = hw.bw_r_gmem_ncoa / hw.bw_r_gmem_coa
        assert ratio == pytest.approx(1 / 8, rel=0.2)

    def test_shared_faster_than_global(self, hw):
        assert hw.bw_r_smem > hw.bw_r_gmem_coa

    def test_utilization_curves_sane(self, hw):
        assert 0 < hw.bw_floor < 1
        assert hw.bw_knee_threads > 1000
        assert 0 < hw.smem_block_fraction <= 1
        assert hw.gmem_utilization(10**9) == 1.0
        assert hw.gmem_utilization(1) == hw.bw_floor

    def test_generations_ordered(self):
        from repro.gpusim.specs import GPU_SPECS

        k80 = measure_hardware_parameters(GPU_SPECS["K80"])
        v100 = measure_hardware_parameters(GPU_SPECS["V100"])
        assert k80.bw_r_gmem_coa < v100.bw_r_gmem_coa


class TestWorkloadParams:
    def test_values(self, layout):
        sample, fp = workload_params(layout, 500)
        assert sample.n_batch == 500
        assert sample.s_sample == layout.forest.n_attributes * 4
        assert fp.n_trees == layout.forest.n_trees
        assert fp.s_node == layout.node_size
        assert fp.s_forest == layout.total_bytes
        assert fp.d_tree == pytest.approx(layout.forest.tree_depths().mean() + 1)


class TestModels:
    def test_all_models_positive(self, layout, hw):
        sample, fp = workload_params(layout, 1000)
        for predict in (
            predict_direct,
            predict_shared_forest,
            predict_splitting_shared_forest,
        ):
            assert predict(sample, fp, hw).total > 0
        assert predict_shared_data(sample, fp, hw, layout).total > 0

    def test_shared_data_scales_with_batch(self, layout, hw):
        s1, fp = workload_params(layout, 100)
        s2, _ = workload_params(layout, 10000)
        t1 = predict_shared_data(s1, fp, hw, layout).total
        t2 = predict_shared_data(s2, fp, hw, layout).total
        assert t2 > t1

    def test_shared_forest_inapplicable_when_too_big(self, layout, hw):
        sample, fp = workload_params(layout, 100)
        small_hw = dataclasses.replace(hw, shared_capacity=16)
        p = predict_shared_forest(sample, fp, small_hw)
        assert not p.applicable
        assert p.total == math.inf

    def test_direct_has_no_reductions(self, layout, hw):
        sample, fp = workload_params(layout, 100)
        p = predict_direct(sample, fp, hw)
        assert p.t_block_reduce == 0 and p.t_global_reduce == 0

    def test_splitting_reports_parts(self, layout, hw):
        sample, fp = workload_params(layout, 100)
        small_hw = dataclasses.replace(hw, shared_capacity=4096)
        p = predict_splitting_shared_forest(sample, fp, small_hw)
        parts = int(p.note.split("=")[1])
        assert parts == math.ceil(fp.s_forest / 4096)

    def test_expected_imbalance_at_least_one(self, layout):
        assert expected_imbalance(layout, 32) >= 1.0

    def test_expected_imbalance_detects_skew(self, layout):
        # One thread gets everything -> stretch = n_threads.
        stretch = expected_imbalance(layout, layout.forest.n_trees * 2)
        assert stretch > 1.0


class TestSelector:
    def test_rank_returns_all_four(self, layout, p100, hw):
        ranked = rank_strategies(layout, 1000, p100, hw)
        assert len(ranked) == 4
        names = {c.name for c in ranked}
        assert names == {
            "shared_data", "direct", "shared_forest", "splitting_shared_forest",
        }

    def test_rank_sorted(self, layout, p100, hw):
        ranked = rank_strategies(layout, 1000, p100, hw)
        times = [c.predicted_time for c in ranked]
        assert times == sorted(times)

    def test_select_returns_applicable(self, layout, p100, hw):
        choice = select_strategy(layout, 1000, p100, hw)
        assert choice.predicted_time < math.inf
        strategy = choice.instantiate()
        assert strategy.name == choice.name

    def test_selection_prefers_model_winner_on_simulator(
        self, layout, p100, hw, test_X, small_forest
    ):
        """The selected strategy must be near-optimal when actually run:
        within 2x of the best measured strategy (the paper reports 87/90
        exact orders; we only demand near-optimality here)."""
        from repro.strategies import ALL_STRATEGIES, StrategyNotApplicable

        measured = {}
        for cls in ALL_STRATEGIES:
            try:
                measured[cls.name] = cls().run(layout, test_X, p100).time
            except StrategyNotApplicable:
                pass
        choice = select_strategy(layout, test_X.shape[0], p100, hw)
        best = min(measured.values())
        assert measured[choice.name] <= 2.0 * best
