"""Tests for LSH bucketing and similarity ordering."""

import numpy as np
import pytest

from repro.hashing.lsh import CollisionTable, lsh_collisions, order_trees_by_similarity
from repro.trees.tree import DecisionTree


class TestLshCollisions:
    def test_counts_symmetric_zero_diagonal(self, small_forest):
        table = lsh_collisions(small_forest.trees[:8], l_hash=64, m_chunks=16)
        np.testing.assert_array_equal(table.counts, table.counts.T)
        assert np.all(np.diag(table.counts) == 0)

    def test_identical_trees_collide_everywhere(self, manual_tree):
        table = lsh_collisions([manual_tree, manual_tree.copy()], l_hash=64, m_chunks=16)
        assert table.counts[0, 1] == 16

    def test_counts_bounded_by_chunks(self, small_forest):
        table = lsh_collisions(small_forest.trees[:6], l_hash=64, m_chunks=16)
        assert table.counts.max() <= 16

    def test_bucket_structure(self, manual_tree):
        table = lsh_collisions([manual_tree, manual_tree.copy()], l_hash=64, m_chunks=8)
        assert len(table.buckets) == 8
        for bucket in table.buckets:
            members = [m for group in bucket.values() for m in group]
            assert sorted(members) == [0, 1]

    def test_rejects_indivisible_chunks(self, manual_tree):
        with pytest.raises(ValueError, match="divisible"):
            lsh_collisions([manual_tree], l_hash=64, m_chunks=7)

    def test_most_similar_pair(self, manual_tree):
        leaf = DecisionTree.single_leaf(1.0)
        table = lsh_collisions([manual_tree, leaf, manual_tree.copy()], l_hash=64, m_chunks=16)
        pair = table.most_similar_pair()
        assert set(pair) == {0, 2}

    def test_most_similar_pair_needs_two(self, manual_tree):
        table = lsh_collisions([manual_tree], l_hash=64, m_chunks=16)
        with pytest.raises(ValueError):
            table.most_similar_pair()


class TestOrderTrees:
    def test_is_permutation(self, small_forest):
        table = lsh_collisions(small_forest.trees, l_hash=64, m_chunks=16)
        order = order_trees_by_similarity(table)
        assert sorted(order) == list(range(small_forest.n_trees))

    def test_empty_and_singleton(self):
        assert order_trees_by_similarity(np.zeros((0, 0))) == []
        assert order_trees_by_similarity(np.zeros((1, 1))) == [0]

    def test_chains_most_similar_first(self):
        # Hand-built similarity matrix: 0-1 strongest, then 1-2.
        counts = np.array(
            [
                [0, 10, 1, 0],
                [10, 0, 5, 0],
                [1, 5, 0, 2],
                [0, 0, 2, 0],
            ]
        )
        order = order_trees_by_similarity(counts)
        assert order == [0, 1, 2, 3]

    def test_figure3_example_order(self):
        """Paper figure 3: collisions (T1,T2)=0, (T2,T3)=2, (T1,T3)=1
        yield the order T2, T3, T1."""
        counts = np.array([[0, 0, 1], [0, 0, 2], [1, 2, 0]])
        order = order_trees_by_similarity(counts)
        assert order in ([1, 2, 0], [2, 1, 0])  # T2-T3 pair first, then T1

    def test_identical_trees_adjacent(self, manual_tree, small_forest):
        """Two copies of the same tree must end up adjacent in the order."""
        trees = small_forest.trees[:6] + [manual_tree, manual_tree.copy()]
        table = lsh_collisions(trees, l_hash=64, m_chunks=16)
        order = order_trees_by_similarity(table)
        pos = {t: i for i, t in enumerate(order)}
        assert abs(pos[6] - pos[7]) == 1
