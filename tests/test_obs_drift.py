"""Calibration drift: ranking-risk accounting over selector decisions."""

from types import SimpleNamespace

import pytest

from repro.obs import CalibrationDriftWarning, CalibrationTracker


def decision(
    predicted=1.0, simulated=1.0, chosen="shared_data", runner_up=None
):
    candidates = [
        SimpleNamespace(strategy=chosen, predicted_time=predicted, applicable=True)
    ]
    if runner_up is not None:
        candidates.append(
            SimpleNamespace(
                strategy="direct", predicted_time=runner_up, applicable=True
            )
        )
    return SimpleNamespace(
        chosen=chosen,
        predicted_time=predicted,
        simulated_time=simulated,
        candidates=candidates,
    )


class TestDecisionMargin:
    def test_margin_is_gap_to_runner_up(self):
        d = decision(predicted=1.0, runner_up=1.4)
        assert CalibrationTracker.decision_margin(d) == pytest.approx(0.4)

    def test_no_runner_up_means_unbounded_margin(self):
        assert CalibrationTracker.decision_margin(decision()) is None

    def test_margin_is_absolute_gap_when_chosen_ranked_second(self):
        # Rival predicted *faster* than the choice (strategy overrides,
        # hardware-target rankings where the executing backend runs
        # regardless of rank).  The flip threshold is still the distance
        # to the nearest rival, not zero.
        d = decision(predicted=1.0, runner_up=0.8)
        assert CalibrationTracker.decision_margin(d) == pytest.approx(0.2)


class TestTracker:
    def test_accurate_predictions_are_healthy(self):
        tracker = CalibrationTracker(warn=False)
        for _ in range(50):
            tracker.record(decision(predicted=1.0, simulated=1.02, runner_up=2.0))
        assert tracker.n_decisions == 50
        assert tracker.at_risk_fraction == 0.0
        assert not tracker.drifted

    def test_residual_beyond_margin_counts_at_risk(self):
        tracker = CalibrationTracker(warn=False)
        # |1.0 - 2.0| = 1.0 residual against a 0.1 margin: could flip.
        tracker.record(decision(predicted=1.0, simulated=2.0, runner_up=1.1))
        assert tracker.at_risk_fraction == 1.0

    def test_min_decisions_floor_gates_drift(self):
        tracker = CalibrationTracker(warn=False, min_decisions=20)
        for _ in range(10):
            tracker.record(decision(predicted=1.0, simulated=3.0, runner_up=1.01))
        assert tracker.at_risk_fraction == 1.0
        assert not tracker.drifted  # too few decisions to call it

    def test_drift_warns_exactly_once(self):
        tracker = CalibrationTracker(min_decisions=20)
        with pytest.warns(CalibrationDriftWarning, match="ranking error"):
            for _ in range(25):
                tracker.record(decision(predicted=1.0, simulated=3.0, runner_up=1.01))
        assert tracker.drifted
        # Further at-risk decisions never re-warn.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracker.record(decision(predicted=1.0, simulated=3.0, runner_up=1.01))

    def test_unclosed_decisions_are_ignored(self):
        tracker = CalibrationTracker(warn=False)
        tracker.record(decision(predicted=None))
        tracker.record(decision(simulated=None))
        tracker.record(decision(simulated=0.0))
        assert tracker.n_decisions == 0

    def test_merge_folds_replicas(self):
        a = CalibrationTracker(warn=False)
        b = CalibrationTracker(warn=False)
        for _ in range(5):
            a.record(decision(predicted=1.0, simulated=1.01, runner_up=2.0))
            b.record(decision(predicted=1.0, simulated=5.0, runner_up=1.05))
        a.merge(b)
        assert a.n_decisions == 10
        assert a.at_risk_fraction == pytest.approx(0.5)
        s = a.summary()
        assert s["per_strategy"]["shared_data"]["n"] == 10

    def test_summary_shape(self):
        tracker = CalibrationTracker(warn=False)
        tracker.record(decision(predicted=1.0, simulated=1.1, runner_up=2.0))
        s = tracker.summary()
        assert set(s) == {
            "n_decisions",
            "ranking_at_risk_fraction",
            "ranking_risk_threshold",
            "drifted",
            "per_strategy",
        }
        per = s["per_strategy"]["shared_data"]
        assert per["n"] == 1
        assert per["mean_abs_rel_error"] == pytest.approx(0.1 / 1.1)


class TestEngineIntegration:
    def test_engine_report_carries_calibration(self, small_forest, p100, test_X):
        from repro.core import TahoeEngine

        engine = TahoeEngine(small_forest, p100)
        result = engine.predict(test_X, report=True)
        calib = result.report.calibration
        assert calib["n_decisions"] >= 1
        assert calib["drifted"] in (False, True)
        assert calib["per_strategy"]
        assert calib["n_decisions"] == sum(
            s["n"] for s in calib["per_strategy"].values()
        )

    def test_serving_report_merges_engine_calibration(
        self, small_forest, p100, test_X
    ):
        from repro.serving import InferenceRequest, SchedulerConfig, TahoeServer

        server = TahoeServer(
            small_forest,
            p100,
            scheduler=SchedulerConfig(n_engines=2, target_batch=4, max_wait=1e-3),
        )
        reqs = [
            InferenceRequest(
                request_id=i, X=test_X[i][None, :], arrival_time=i * 1e-5
            )
            for i in range(24)
        ]
        result = server.run(reqs, report=True)
        calib = result.report.calibration
        assert calib["n_decisions"] == result.summary["batches"]
