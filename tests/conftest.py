"""Shared fixtures.

Training is the slow part of most tests, so trained workloads are
session-scoped and deliberately tiny; tests that need specific structure
build their own trees by hand instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, train_test_split
from repro.gpusim.specs import GPU_SPECS
from repro.trees import GBDTTrainer, RandomForestTrainer
from repro.trees.tree import LEAF, DecisionTree


@pytest.fixture(scope="session")
def p100():
    return GPU_SPECS["P100"]


@pytest.fixture(scope="session")
def small_split():
    """A small classification dataset split (letter-like)."""
    data = load_dataset("letter", scale=0.08, seed=11)
    return train_test_split(data, seed=11)


@pytest.fixture(scope="session")
def small_forest(small_split):
    """A small random forest with depth variance."""
    return RandomForestTrainer(
        n_trees=24, max_depth=6, depth_jitter=0.5, feature_fraction=0.5, seed=3
    ).fit(small_split.train)


@pytest.fixture(scope="session")
def small_gbdt(small_split):
    """A small GBDT ensemble."""
    return GBDTTrainer(n_trees=16, max_depth=4, depth_jitter=0.4, seed=3).fit(
        small_split.train
    )


@pytest.fixture(scope="session")
def test_X(small_split):
    return small_split.test.X[:120]


def make_manual_tree() -> DecisionTree:
    """A hand-built 7-node tree with known probabilities.

    Structure::

            0 (f0 < 0.5)
           /   \
          1     2 (f1 < -1.0)
               /   \
              3     4 (f0 < 2.0)
                   /   \
                  5     6

    Visit counts make the right branch of node 0 the hot one (edge
    probability 0.8), so probability-based rearrangement must swap it.
    """
    return DecisionTree(
        feature=np.array([0, LEAF, 1, LEAF, 0, LEAF, LEAF], dtype=np.int32),
        threshold=np.array([0.5, 0, -1.0, 0, 2.0, 0, 0], dtype=np.float32),
        left=np.array([1, LEAF, 3, LEAF, 5, LEAF, LEAF], dtype=np.int32),
        right=np.array([2, LEAF, 4, LEAF, 6, LEAF, LEAF], dtype=np.int32),
        value=np.array([0, 1.0, 0, 2.0, 0, 3.0, 4.0], dtype=np.float32),
        default_left=np.array([True, True, False, True, True, True, True]),
        visit_count=np.array([100, 20, 80, 30, 50, 35, 15], dtype=np.int64),
    )


@pytest.fixture()
def manual_tree():
    return make_manual_tree()
