"""Tests for the spec-driven training pipeline."""

import pytest

from repro.datasets import DATASETS
from repro.trees import train_forest_for_spec


class TestTrainForestForSpec:
    def test_rf_spec_uses_mean_aggregation(self):
        w = train_forest_for_spec("letter", scale=0.05, tree_scale=0.1, seed=0)
        assert w.forest.aggregation == "mean"
        assert w.dataset_name == "letter"

    def test_gbdt_spec_uses_sum_aggregation(self):
        w = train_forest_for_spec("cup98", scale=0.05, tree_scale=0.1, seed=0)
        assert w.forest.aggregation == "sum"

    def test_tree_scale_applied(self):
        w = train_forest_for_spec("letter", scale=0.05, tree_scale=0.1, seed=0)
        assert w.forest.n_trees == 15  # 150 * 0.1

    def test_minimum_four_trees(self):
        w = train_forest_for_spec("cifar10", scale=0.02, tree_scale=0.01, seed=0)
        assert w.forest.n_trees == 4

    def test_max_trees_cap(self):
        w = train_forest_for_spec("letter", scale=0.05, tree_scale=0.5, max_trees=10, seed=0)
        assert w.forest.n_trees == 10

    def test_depth_respects_spec(self):
        w = train_forest_for_spec("covtype", scale=0.002, tree_scale=0.02, seed=0)
        assert w.forest.max_depth() <= DATASETS["covtype"].max_depth

    def test_metadata_links_back_to_paper(self):
        w = train_forest_for_spec("letter", scale=0.05, tree_scale=0.1, seed=0)
        md = w.forest.metadata
        assert md["paper_n_trees"] == 150
        assert md["dataset_index"] == 15

    def test_split_is_seventy_thirty(self):
        w = train_forest_for_spec("letter", scale=0.05, tree_scale=0.05, seed=0)
        ratio = w.split.n_train / (w.split.n_train + w.split.n_test)
        assert ratio == pytest.approx(0.7, abs=0.01)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            train_forest_for_spec("imagenet")

    def test_forest_depths_heterogeneous_by_default(self):
        w = train_forest_for_spec("Higgs", scale=0.002, tree_scale=0.02, seed=1)
        assert w.forest.tree_depths().std() > 0
