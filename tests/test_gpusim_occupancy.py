"""Tests for occupancy, spec scaling, and the latency-roofline behaviour."""

import numpy as np
import pytest

from repro.gpusim.counters import TrafficCounters
from repro.gpusim.engine_sim import execution_time
from repro.gpusim.specs import GPU_SPECS


class TestConcurrentBlocks:
    def test_slim_blocks_get_more_residency(self, p100):
        slim = p100.concurrent_blocks(32)
        fat = p100.concurrent_blocks(256)
        assert slim > fat

    def test_block_slot_cap(self, p100):
        # 32 hardware block slots per SM cap even tiny blocks.
        assert p100.concurrent_blocks(32) == p100.sm_count * 32

    def test_thread_budget_cap(self, p100):
        assert p100.concurrent_blocks(1024) == p100.sm_count * (
            p100.max_resident_threads_per_sm // 1024
        )

    def test_shared_memory_limits_residency(self, p100):
        full = p100.concurrent_blocks(256, p100.shared_mem_per_block)
        assert full == p100.sm_count  # one smem-full block per SM
        half = p100.concurrent_blocks(256, p100.shared_mem_per_block // 2)
        assert half == 2 * p100.sm_count

    def test_zero_smem_ignored(self, p100):
        assert p100.concurrent_blocks(256, 0) == p100.concurrent_blocks(256)

    def test_rejects_bad_block(self, p100):
        with pytest.raises(ValueError):
            p100.concurrent_blocks(0)


class TestScaledSpec:
    def test_bandwidths_scale_together(self, p100):
        small = p100.scaled(compute=1 / 4)
        assert small.global_bw == pytest.approx(p100.global_bw / 4)
        assert small.shared_bw == pytest.approx(p100.shared_bw / 4)
        assert small.sm_count == max(1, round(p100.sm_count / 4))

    def test_per_sm_character_preserved(self, p100):
        small = p100.scaled(compute=1 / 8)
        assert small.memory_latency == p100.memory_latency
        assert small.block_reduce_rate == p100.block_reduce_rate
        assert small.transaction_bytes == p100.transaction_bytes

    def test_shared_capacity_scales_independently(self, p100):
        small = p100.scaled(shared_capacity=1 / 2)
        assert small.shared_mem_per_block == p100.shared_mem_per_block // 2
        assert small.global_bw == p100.global_bw

    def test_rejects_nonpositive(self, p100):
        with pytest.raises(ValueError):
            p100.scaled(compute=0)

    def test_saturation_point_scales(self, p100):
        small = p100.scaled(compute=1 / 8)
        assert small.threads_for_peak_bw < p100.threads_for_peak_bw


class TestLatencyRoofline:
    def _counters(self, n_bytes):
        t = TrafficCounters()
        t.forest_global.add(n_bytes // 2, n_bytes, n_bytes // 128, 10)
        return t

    def test_chain_floor_applies(self, p100):
        short = execution_time(
            self._counters(1024), p100, 64, 64, 1, chain_steps=0
        )
        long = execution_time(
            self._counters(1024), p100, 64, 64, 1, chain_steps=100000
        )
        assert long.latency_bound
        assert long.total == pytest.approx(
            100000 * p100.memory_latency + long.t_launch
        )
        assert not short.latency_bound

    def test_chain_irrelevant_when_bandwidth_bound(self, p100):
        big = execution_time(
            self._counters(1 << 28), p100, 10**6, 256, 4000, chain_steps=10
        )
        assert not big.latency_bound

    def test_smem_block_bytes_throttle_reductions(self, p100):
        free = execution_time(
            self._counters(1024), p100, 10000, 256, 400,
            block_reduction_events=1000, block_shared_bytes=0,
        )
        throttled = execution_time(
            self._counters(1024), p100, 10000, 256, 400,
            block_reduction_events=1000,
            block_shared_bytes=p100.shared_mem_per_block,
        )
        assert throttled.t_block_reduce > free.t_block_reduce
