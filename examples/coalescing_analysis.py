"""Coalescing analysis: reproduce the paper's motivating figure 2(a).

Runs the same forest under FIL's reorg format and Tahoe's adaptive
format, collecting the per-tree-level memory statistics the paper plots:
the mean byte distance between addresses issued by adjacent warp lanes,
and the load efficiency (requested / fetched bytes) of forest reads.

Run with::

    python examples/coalescing_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import GPU_SPECS
from repro.formats import build_adaptive_layout, build_reorg_layout, round_robin_assignment
from repro.gpusim import trace_tree_parallel
from repro.trees import train_forest_for_spec


def analyse(layout, X, spec, label: str) -> None:
    assignment = round_robin_assignment(layout.forest.n_trees, 32)
    trace = trace_tree_parallel(
        layout, X, np.arange(X.shape[0]), assignment, spec,
        collect_level_stats=True,
    )
    distances = trace.level_stats.mean_distance()
    efficiency = trace.level_stats.efficiency()
    valid = ~np.isnan(distances)
    print(f"\n--- {label} ---")
    print(f"{'level':>5} {'adjacent-lane distance':>24} {'load efficiency':>16}")
    for level in np.nonzero(valid)[0]:
        bar = "#" * int(efficiency[level] * 40)
        print(
            f"{level:>5} {distances[level]:>22.0f} B "
            f"{efficiency[level]:>15.1%} {bar}"
        )
    overall = trace.counters.forest_global.load_efficiency
    print(f"overall forest-read efficiency: {overall:.1%}")


def main() -> None:
    # The paper's motivating setup: a Higgs forest of 120 trees.
    workload = train_forest_for_spec(
        "Higgs", scale=0.004, tree_scale=0.04, max_depth=10, seed=3
    )
    forest = workload.forest
    X = workload.split.test.X[:300]
    spec = GPU_SPECS["P100"]
    print(
        f"forest: {forest.n_trees} trees, depths "
        f"{forest.tree_depths().min()}-{forest.tree_depths().max()}"
    )
    analyse(build_reorg_layout(forest), X, spec, "FIL reorg format")
    analyse(
        build_adaptive_layout(forest, variable_width=False), X, spec,
        "Tahoe adaptive format (fixed-width records, coalescing isolated)",
    )
    print(
        "\npaper (figure 2a): under the reorg format the adjacent-lane\n"
        "distance grows with depth and efficiency collapses to ~13.7%;\n"
        "the adaptive format keeps hot paths adjacent much deeper."
    )


if __name__ == "__main__":
    main()
