"""Quickstart: train a forest, run Tahoe, compare against FIL.

This is the five-minute tour of the library: synthesise a Table 2
dataset, train the paper's forest for it, build both engines on a
simulated P100, and compare predictions and simulated inference time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FILEngine, GPU_SPECS, TahoeEngine
from repro.trees import train_forest_for_spec


def main() -> None:
    # Train a Higgs-like random forest (scaled down from the paper's
    # 250 K samples / 3 000 trees so the example runs in seconds).
    workload = train_forest_for_spec("Higgs", scale=0.01, tree_scale=0.04, seed=0)
    forest = workload.forest
    X = workload.split.test.X
    print(
        f"forest: {forest.n_trees} trees, depths "
        f"{forest.tree_depths().min()}-{forest.tree_depths().max()}, "
        f"{forest.n_nodes} nodes; inference batch: {X.shape[0]} samples"
    )

    # Scale the GPU with the workload (DESIGN.md section 5): a ~750-sample
    # batch saturates a 1/16-scale P100 the way the paper's 100 K batches
    # saturate a full one, putting us in the high-parallelism regime where
    # layout quality matters.  Use GPU_SPECS["P100"] unscaled to explore
    # the latency-bound low-parallelism regime instead.
    spec = GPU_SPECS["P100"].scaled(compute=1 / 16)
    fil = FILEngine(forest, spec)
    tahoe = TahoeEngine(forest, spec)

    fil_result = fil.predict(X)
    tahoe_result = tahoe.predict(X)

    # Both engines are exact: they reproduce the reference predictor.
    reference = forest.predict(X)
    assert np.allclose(fil_result.predictions, reference, atol=1e-5)
    assert np.allclose(tahoe_result.predictions, reference, atol=1e-5)
    print("predictions: identical to the reference predictor for both engines")

    print(f"FIL   (reorg + shared data): {fil_result.total_time * 1e3:8.3f} ms simulated")
    print(
        f"Tahoe (adaptive + {tahoe_result.strategies_used[0]}): "
        f"{tahoe_result.total_time * 1e3:8.3f} ms simulated"
    )
    print(f"speedup: {fil_result.total_time / tahoe_result.total_time:.2f}x")

    stats = tahoe.conversion_stats
    print(
        "one-time conversion (CPU): "
        f"{stats.total * 1e3:.1f} ms total — similarity detection "
        f"{stats.t_similarity_detection * 1e3:.1f} ms, node rearrangement "
        f"{stats.t_node_rearrangement * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
