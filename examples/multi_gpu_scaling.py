"""Multi-GPU scaling study (figure 9 in miniature).

Partitions an inference workload across 1-64 simulated V100s (strong
scaling) and duplicates it per GPU (weak scaling), showing the
saturation behaviour the paper reports for small datasets.

Run with::

    python examples/multi_gpu_scaling.py
"""

from __future__ import annotations

from repro import GPU_SPECS, TahoeEngine
from repro.gpusim.multigpu import simulate_multi_gpu, weak_scaling_times
from repro.trees import train_forest_for_spec

GPU_COUNTS = [1, 2, 4, 8, 16, 32, 64]


def scaling_for(dataset: str, scale: float, tree_scale: float) -> None:
    workload = train_forest_for_spec(dataset, scale=scale, tree_scale=tree_scale, seed=2)
    X = workload.split.test.X
    # Scale the GPU down with the workload so per-shard utilisation spans
    # the same range the paper's full-size runs do (see DESIGN.md 4b/5).
    spec = GPU_SPECS["V100"].scaled(compute=1 / 32)
    engine = TahoeEngine(workload.forest, spec)

    def time_for(n_samples: int) -> float:
        return engine.predict(X[: max(1, min(n_samples, X.shape[0]))]).total_time

    strong = simulate_multi_gpu(time_for, X.shape[0], GPU_COUNTS)
    weak = weak_scaling_times(time_for, X.shape[0], GPU_COUNTS)
    print(f"\n=== {dataset}: {X.shape[0]} inference samples ===")
    print("GPUs    : " + "  ".join(f"{g:6d}" for g in strong.gpu_counts))
    print("speedup : " + "  ".join(f"{s:6.1f}" for s in strong.speedups))
    variance = (max(weak) - min(weak)) / min(weak)
    print(f"weak scaling: per-GPU time flat within {variance:.1%} (paper: <5%)")


def main() -> None:
    # A large dataset scales; a tiny one saturates (HOCK-like behaviour).
    scaling_for("SUSY", scale=0.01, tree_scale=0.04)
    scaling_for("HOCK", scale=1.0, tree_scale=1.0)


if __name__ == "__main__":
    main()
