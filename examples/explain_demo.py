"""Explain demo: serve a multiclass LightGBM model and ask it *why*.

Imports a real LightGBM ``save_model`` text dump (the multiclass fixture
the tests use — three softmax classes, per-class tree groups), stands up
a :class:`TahoeServer`, and pushes mixed predict/explain traffic through
it:

* ``InferenceRequest(kind="explain")`` rides the same queue as
  prediction; the scheduler coalesces kind-homogeneous micro-batches,
* explain responses carry exact SHAP ``attributions`` (per sample, per
  feature, per class) and per-class ``base_values``,
* the efficiency axiom holds end to end: base + sum(attributions)
  reconstructs the raw margins the server returns,
* every request's stage trace exports to one Chrome/Perfetto timeline.

Run::

    PYTHONPATH=src python examples/explain_demo.py

Then open ``explain_trace.json`` at https://ui.perfetto.dev.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import GPU_SPECS
from repro.datasets import load_dataset, train_test_split
from repro.modelstore import import_model
from repro.obs import write_serving_trace
from repro.serving import InferenceRequest, SchedulerConfig, TahoeServer

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "fixtures"
    / "lightgbm_multiclass_model.txt"
)


def main() -> None:
    # --- import a foreign multiclass dump --------------------------------
    forest = import_model(FIXTURE)
    print(
        f"imported {FIXTURE.name}: {forest.n_trees} trees in "
        f"{forest.n_classes} per-class groups "
        f"({forest.metadata.get('multiclass_link', 'softmax')} link, "
        f"{forest.n_attributes} features)"
    )

    # letter has 16 attributes — the same width as the fixture.
    data = load_dataset("letter", scale=0.02, seed=3)
    X_pool = train_test_split(data, seed=3).test.X[:, : forest.n_attributes]

    # --- serve mixed predict/explain traffic ------------------------------
    spec = GPU_SPECS["P100"]
    server = TahoeServer(
        forest, spec, scheduler=SchedulerConfig(n_engines=1, max_wait=1e-3)
    )
    rng = np.random.default_rng(11)
    kinds = np.where(rng.random(80) < 0.3, "explain", "predict")
    requests = [
        InferenceRequest(
            request_id=i,
            X=X_pool[i % len(X_pool)][None, :],
            arrival_time=i * 5e-5,
            kind=str(kinds[i]),
        )
        for i in range(len(kinds))
    ]
    result = server.run(requests)
    s = result.summary
    explained = [r for r in result.responses if r.ok and r.attributions is not None]
    print(
        f"served {s['completed']}/{s['requests']} requests "
        f"({len(explained)} explained) over {s['batches']} micro-batches, "
        f"p95 {s['latency_s']['p95'] * 1e3:.2f} ms"
    )

    # --- read the attributions off a response -----------------------------
    r = explained[0]
    phi = np.asarray(r.attributions)[0]          # (features, classes)
    base = np.asarray(r.base_values)             # (classes,)
    margins = np.asarray(r.predictions)[0]       # reconstructed raw margins
    np.testing.assert_allclose(base + phi.sum(axis=0), margins, rtol=1e-9)
    k = int(margins.argmax())
    print(f"\nrequest {r.request_id}: argmax class {k} "
          f"(margin {margins[k]:+.4f}, base {base[k]:+.4f})")
    print("top features for that class:")
    for f in np.argsort(-np.abs(phi[:, k]))[:5]:
        print(f"  feature {f:>2}: {phi[f, k]:+.5f}")

    # The axiom holds for *every* explain response the server produced.
    for r in explained:
        np.testing.assert_allclose(
            np.asarray(r.base_values) + np.asarray(r.attributions).sum(axis=1),
            np.asarray(r.predictions, dtype=np.float64),
            rtol=1e-9,
            atol=1e-12,
        )
    print(f"\nefficiency axiom verified on all {len(explained)} explain responses")

    # --- export the per-request stage timeline ----------------------------
    out = write_serving_trace(result.responses, "explain_trace.json")
    print(f"wrote {out} (open in chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
