"""Serving demo: micro-batching, deadlines, backpressure, layout cache.

Trains a small letter random forest, stands up a :class:`TahoeServer`
with two engine replicas on a simulated P100, and pushes an open-loop
Poisson workload through it — then shows what the serving layer adds on
top of plain ``predict(X)``:

* the §6 performance models choose the micro-batch flush point,
* the second replica adopts the converted layout from the cache
  (conversion runs once, as a multi-GPU deployment should),
* per-request deadlines and a bounded queue turn overload into
  structured rejections instead of exceptions,
* latency quantiles / batch histograms flow through the usual
  observability stack.

Run::

    PYTHONPATH=src python examples/serving_demo.py
"""

import numpy as np

from repro import GPU_SPECS, LayoutCache
from repro.serving import (
    InferenceRequest,
    SchedulerConfig,
    TahoeServer,
    poisson_workload,
)
from repro.trees import train_forest_for_spec


def main() -> None:
    spec = GPU_SPECS["P100"]
    workload = train_forest_for_spec("letter", scale=0.05, tree_scale=0.05, seed=0)
    forest, X_pool = workload.forest, workload.split.test.X

    # --- one server, two replicas, one conversion -------------------------
    cache = LayoutCache()
    server = TahoeServer(
        forest,
        spec,
        scheduler=SchedulerConfig(n_engines=2, max_wait=2e-3, max_queue=256),
        layout_cache=cache,
    )
    print(f"model-chosen flush point: {server.target_batch} samples")
    for g, engine in enumerate(server.engines):
        stats = engine.conversion_stats
        how = "layout-cache hit" if stats.cache_hit else "full conversion"
        print(f"  replica {g}: {how} ({stats.total * 1e3:.2f} ms)")

    # --- healthy open-loop traffic ---------------------------------------
    requests = poisson_workload(
        X_pool, qps=1500, duration=1.0, seed=7, deadline=0.05
    )
    result = server.run(requests, report=True)
    s = result.summary
    lat = s["latency_s"]
    print(
        f"\nhealthy load: {s['completed']}/{s['requests']} ok, "
        f"{s['achieved_qps']:.0f} qps achieved, "
        f"p50 {lat['p50'] * 1e3:.2f} ms / p99 {lat['p99'] * 1e3:.2f} ms "
        f"over {s['batches']} micro-batches"
    )

    # spot-check a response against the reference forest
    ok = next(r for r in result.responses if r.ok)
    np.testing.assert_allclose(
        ok.predictions, forest.predict(requests[ok.request_id].X), rtol=1e-5
    )

    # --- overload: the bounded queue pushes back -------------------------
    crowded = TahoeServer(
        forest,
        spec,
        scheduler=SchedulerConfig(
            n_engines=1, max_queue=8, target_batch=10_000, max_wait=10.0
        ),
        layout_cache=cache,  # warm: this construction converts nothing
    )
    burst = [
        InferenceRequest(request_id=i, X=X_pool[i % len(X_pool)], arrival_time=1e-9 * i)
        for i in range(40)
    ]
    overload = crowded.run(burst)
    rej = [r for r in overload.responses if not r.ok]
    print(
        f"\noverload burst: {overload.summary['completed']} served, "
        f"{len(rej)} rejected with code "
        f"{rej[0].error.code!r} — no exceptions, just structured errors"
    )
    print(f"layout cache after both servers: {cache.stats()}")


if __name__ == "__main__":
    main()
