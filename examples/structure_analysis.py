"""Structure analysis: how much can Tahoe help *this* forest?

Profiles several forests with :mod:`repro.trees.analysis` and relates the
scores to what the engine actually does with each: hot-path skew drives
node rearrangement, work dispersion drives tree rearrangement, and the
forest-size-to-shared-memory ratio drives strategy choice.

Run with::

    python examples/structure_analysis.py
"""

from __future__ import annotations

from repro import GPU_SPECS, TahoeEngine
from repro.formats import build_adaptive_layout
from repro.trees import train_forest_for_spec
from repro.trees.analysis import structure_profile


def profile(name: str, scale: float, tree_scale: float) -> None:
    workload = train_forest_for_spec(name, scale=scale, tree_scale=tree_scale, seed=6)
    forest = workload.forest
    info = structure_profile(forest)
    layout = build_adaptive_layout(forest)
    spec = GPU_SPECS["P100"].scaled(compute=1 / 16)
    engine = TahoeEngine(forest, spec)
    strategy = engine.select_strategy_name(workload.split.n_test)
    print(f"\n=== {name} ===")
    print(
        f"  {info['n_trees']} trees, {info['n_nodes']} nodes, depths "
        f"{info['depth_min']}-{info['depth_max']} (mean {info['depth_mean']:.1f})"
    )
    hist = " ".join(f"d{d}:{c}" for d, c in info["depth_histogram"].items())
    print(f"  depth histogram: {hist}")
    print(
        f"  hot-path skew: {info['hot_path_skew']:.2f} "
        f"-> node rearrangement benefit: {info['node_rearrangement_benefit']}"
    )
    print(
        f"  work dispersion: {info['work_dispersion']:.2f} "
        f"-> tree rearrangement benefit: {info['tree_rearrangement_benefit']}"
    )
    print(
        f"  adaptive layout: {layout.total_bytes} B "
        f"(shared capacity {spec.shared_mem_per_block} B) "
        f"-> engine picks: {strategy}"
    )


def main() -> None:
    profile("Higgs", scale=0.008, tree_scale=0.05)   # many trees, mixed depth
    profile("covtype", scale=0.005, tree_scale=0.1)  # shallow trees
    profile("letter", scale=0.3, tree_scale=0.2)     # tiny forest, fits shared


if __name__ == "__main__":
    main()
