"""Hot-swapping a model under live traffic, via the model store.

The deployment story :mod:`repro.modelstore` exists for: a server is
taking Poisson traffic on model v1 when a retrained v2 lands.  The new
version is packed offline into a ``.tahoe`` artifact (the converted
layout itself — loading it needs zero conversion work), staged into a
replacement engine pool off the hot path, and swapped in between
micro-batches.  No request is dropped; responses are tagged with the
version that served them.

Run::

    PYTHONPATH=src python examples/hot_swap_serving.py
"""

import tempfile
from pathlib import Path

from repro import GPU_SPECS, LayoutCache
from repro.modelstore import load_packed, pack_forest
from repro.serving import SchedulerConfig, TahoeServer, poisson_workload
from repro.trees import train_forest_for_spec


def main() -> None:
    spec = GPU_SPECS["P100"]
    work = Path(tempfile.mkdtemp(prefix="tahoe-hotswap-"))

    # v1: the model currently in production.
    v1 = train_forest_for_spec("letter", scale=0.05, tree_scale=0.05, seed=0)
    forest_v1, X_pool = v1.forest, v1.split.test.X
    # v2: a retrain (more data, different seed), packed offline exactly as
    # a model-build pipeline would: `repro pack` / pack_forest runs the
    # conversion once and persists the finished layout.
    forest_v2 = train_forest_for_spec(
        "letter", scale=0.06, tree_scale=0.05, seed=1
    ).forest
    artifact = pack_forest(forest_v2, spec, work / "letter_v2.tahoe").path
    print(f"packed v2 -> {artifact.name} ({artifact.stat().st_size} bytes)")

    cache = LayoutCache()
    server = TahoeServer(
        forest_v1,
        spec,
        scheduler=SchedulerConfig(n_engines=2, max_wait=2e-3),
        layout_cache=cache,
    )
    print(f"serving {server.active_version.label}")

    # Stage the packed artifact: engines are built *now*, off the request
    # path, with zero conversion (the layout is adopted as packed), and
    # the swap is armed for t=0.5s of simulated traffic.
    staged = server.stage(packed=load_packed(artifact), at_time=0.4)
    for engine in server._staged[staged.version]:
        assert engine.conversion_stats.source == "artifact"
    server.schedule_swap(staged.version, at_time=0.5)
    print(f"staged {staged.label} (conversion-free) — swap armed for t=0.5s")

    # One second of Poisson traffic straddling the swap instant.
    requests = poisson_workload(X_pool, qps=1200, duration=1.0, seed=7)
    result = server.run(requests)

    s = result.summary
    served = s["model"]["served_by_version"]
    event = s["model"]["swap_events"][0]
    print(
        f"\n{s['completed']}/{s['requests']} requests ok across the swap "
        f"(zero dropped), {s['batches']} micro-batches"
    )
    print(
        f"swap {event['from_label']} -> {event['to_label']} "
        f"at t={event['time']:.3f}s"
    )
    for label, count in sorted(served.items()):
        print(f"  {label}: {count} requests")
    # Both versions' layouts stayed pinned in the cache for the handover.
    print(f"layout cache: {cache.stats()}")


if __name__ == "__main__":
    main()
