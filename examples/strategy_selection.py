"""Strategy selection: watch the performance models pick different
strategies as the workload changes.

Reproduces the insight of paper section 5.2 interactively: "No single
strategy can perform best in all datasets with different batch sizes,
datasets, and forests."  The script sweeps batch sizes on two contrasting
forests and prints, for each, what the models predict for every strategy
and which one the engine executes.

Run with::

    python examples/strategy_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import GPU_SPECS
from repro.formats import build_adaptive_layout
from repro.perfmodel import measure_hardware_parameters, rank_strategies
from repro.trees import train_forest_for_spec


def sweep(dataset: str, scale: float, tree_scale: float) -> None:
    workload = train_forest_for_spec(dataset, scale=scale, tree_scale=tree_scale, seed=1)
    forest = workload.forest
    layout = build_adaptive_layout(forest)
    spec = GPU_SPECS["P100"]
    hw = measure_hardware_parameters(spec)
    print(
        f"\n=== {dataset}: {forest.n_trees} trees, mean depth "
        f"{forest.mean_depth():.1f}, layout {layout.total_bytes} B "
        f"(shared capacity {spec.shared_mem_per_block} B) ==="
    )
    header = f"{'batch':>8} | " + " | ".join(
        f"{name:>24}" for name in
        ("shared_data", "direct", "shared_forest", "splitting_shared_forest")
    )
    print(header)
    for batch in (100, 1000, 10_000, 100_000):
        ranked = rank_strategies(layout, batch, spec, hw)
        by_name = {c.name: c for c in ranked}
        winner = ranked[0].name
        cells = []
        for name in ("shared_data", "direct", "shared_forest", "splitting_shared_forest"):
            t = by_name[name].predicted_time
            label = "N/A" if t == float("inf") else f"{t * 1e3:.3f} ms"
            if name == winner:
                label = f"*{label}*"
            cells.append(f"{label:>24}")
        print(f"{batch:>8} | " + " | ".join(cells))
    print("(* = selected; predictions are per batch on a simulated P100)")


def main() -> None:
    # A big ensemble of small trees: splitting-shared-forest territory at
    # scale, shared-data at small batches.
    sweep("Higgs", scale=0.004, tree_scale=0.05)
    # A small forest of small trees: fits in shared memory outright.
    sweep("letter", scale=0.3, tree_scale=0.2)


if __name__ == "__main__":
    main()
