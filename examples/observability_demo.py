"""Observability demo: trace a run, inspect its report, export it.

Trains a small forest, runs Tahoe with tracing enabled, and then walks
through everything the telemetry layer captured: the span tree, the
conversion-stage breakdown, each batch's strategy decision with the
selector's predicted time next to the simulated time it actually took,
and the exporters (JSON run report, Chrome trace, Prometheus text).

Run with::

    python examples/observability_demo.py

Then open ``trace.json`` at chrome://tracing or https://ui.perfetto.dev.
"""

from __future__ import annotations

from repro import GPU_SPECS, TahoeEngine
from repro.core import ObsConfig, TahoeConfig
from repro.gpusim.report import format_run_report
from repro.obs import metrics_to_prometheus, write_chrome_trace, write_report_json
from repro.trees import train_forest_for_spec


def main() -> None:
    workload = train_forest_for_spec("letter", scale=0.3, tree_scale=0.2, seed=0)
    forest = workload.forest
    X = workload.split.test.X
    print(f"forest: {forest.n_trees} trees, {forest.n_nodes} nodes; "
          f"{X.shape[0]} inference samples\n")

    # Tracing is off by default (the no-op spans cost almost nothing);
    # opt in through the engine config.
    spec = GPU_SPECS["P100"].scaled(compute=1 / 16)
    engine = TahoeEngine(forest, spec, config=TahoeConfig(obs=ObsConfig(tracing=True)))

    # report=True asks for the RunReport artifact alongside predictions.
    result = engine.predict(X, batch_size=100, report=True)
    report = result.report
    report.dataset = "letter"

    # --- the span tree -------------------------------------------------
    tracer = engine.recorder.tracer
    print(f"recorded {len(tracer.spans)} spans ({tracer.dropped} dropped):")
    for s in sorted(tracer.spans, key=lambda s: s.start)[:12]:
        print(f"  {'  ' * s.depth}{s.name:<34} {s.duration * 1e6:9.1f} us  {s.args}")
    if len(tracer.spans) > 12:
        print(f"  ... and {len(tracer.spans) - 12} more")

    # --- prediction vs actual, per decision ----------------------------
    print("\nper-batch decisions (model prediction vs simulated time):")
    for d in report.decisions[:5]:
        print(
            f"  batch {d.batch_index}: {d.chosen:<24} "
            f"predicted {d.predicted_time * 1e3:8.4f} ms, "
            f"simulated {d.simulated_time * 1e3:8.4f} ms "
            f"(ratio {d.prediction_ratio:.3f})"
        )

    # --- the full human-readable report --------------------------------
    print()
    print(format_run_report(report))

    # --- exporters -----------------------------------------------------
    write_report_json(report, "run_report.json")
    write_chrome_trace(tracer, "trace.json")
    print("wrote run_report.json (versioned JSON; load_report_json inverts it)")
    print("wrote trace.json      (open in chrome://tracing or ui.perfetto.dev)")
    print("\nPrometheus exposition snapshot (first lines):")
    for line in metrics_to_prometheus(engine.recorder.metrics).splitlines()[:10]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
