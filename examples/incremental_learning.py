"""Incremental learning: update the forest, let Tahoe reconvert.

Paper section 4.2 motivates computing tree similarity online: "the
incremental learning can change the tree structures, and hence change
the tree similarity accordingly"; Algorithm 1 re-runs the conversion
whenever the forest is updated and counts edge probabilities during
inference so the next conversion reflects the live data distribution.

This example simulates a production loop: boost additional trees onto a
deployed GBDT, push the update into the engine, and verify that (1) the
engine keeps matching the reference predictor and (2) edge-probability
counting adapts the layout to a drifted inference distribution.

Run with::

    python examples/incremental_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import GPU_SPECS, TahoeConfig, TahoeEngine
from repro.datasets import load_dataset, train_test_split
from repro.trees import GBDTTrainer


def main() -> None:
    data = load_dataset("SUSY", scale=0.004, seed=5)
    split = train_test_split(data, seed=5)
    spec = GPU_SPECS["V100"]

    # Deploy an initial 40-tree GBDT.
    trainer = GBDTTrainer(n_trees=40, max_depth=6, depth_jitter=0.4, seed=5)
    forest_v1 = trainer.fit(split.train)
    engine = TahoeEngine(forest_v1, spec)
    X = split.test.X
    r1 = engine.predict(X)
    assert np.allclose(r1.predictions, forest_v1.predict(X), atol=1e-5)
    print(
        f"v1: {forest_v1.n_trees} trees, conversion "
        f"{engine.conversion_stats.total * 1e3:.1f} ms, "
        f"strategy {r1.strategies_used[0]}, simulated {r1.total_time * 1e3:.2f} ms"
    )

    # More training arrives: boost 40 extra rounds onto the deployed
    # model's residuals and hot-swap the forest.
    forest_v2 = trainer.continue_fit(forest_v1, split.train, n_more=40)
    stats = engine.update_forest(forest_v2)
    r2 = engine.predict(X)
    assert np.allclose(r2.predictions, forest_v2.predict(X), atol=1e-5)
    print(
        f"v2: {forest_v2.n_trees} trees, reconversion {stats.total * 1e3:.1f} ms, "
        f"strategy {r2.strategies_used[0]}, simulated {r2.total_time * 1e3:.2f} ms"
    )

    # Inference-time edge-probability counting (Algorithm 1 line 16):
    # feed a drifted distribution and let the engine re-learn its hot
    # paths, then check the node order adapted.
    drifted = X + 1.5  # shift every attribute: different branches go hot
    counting_engine = TahoeEngine(
        forest_v2, spec, config=TahoeConfig(count_edge_probabilities=True, edge_count_decay=0.0)
    )
    before = [tree.flip.copy() for tree in counting_engine.forest.trees]
    counting_engine.predict(drifted)  # counts routing, triggers reconversion
    after = [tree.flip for tree in counting_engine.forest.trees]
    changed = sum(
        int(not np.array_equal(b[: len(a)], a[: len(b)])) for b, a in zip(before, after)
    )
    print(
        f"edge-probability counting: hot-path layout changed in "
        f"{changed}/{len(after)} trees after the distribution drifted"
    )
    r3 = counting_engine.predict(drifted)
    assert np.allclose(r3.predictions, forest_v2.predict(drifted), atol=1e-5)
    print("predictions remain exact after adaptation")


if __name__ == "__main__":
    main()
